//! Serve-side chaos: panic isolation, ENOSPC graceful degradation, and the
//! write-fault campaign over the accept → fault → recovery-boot path.
//!
//! The library-level mix→checkpoint→resume campaign lives in the root test
//! tree (`tests/storage_chaos.rs`, registered under ckpt); this file drives
//! the same contract through real sockets against a [`serve::Server`]
//! whose durable writes go through a scripted [`vfs::FaultVfs`].

use std::collections::HashMap;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use graphcore::{io as gio, EdgeList};
use serve::client;
use serve::{BootError, ServeConfig, Server};
use vfs::{FaultKind, FaultVfs, RetryPolicy, Vfs};

const T: Duration = Duration::from_secs(30);

fn ring(n: u32) -> EdgeList {
    EdgeList::from_pairs((0..n).map(|i| (i, (i + 1) % n)))
}

fn tmp_state(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("nullgraph_serve_chaos_tests")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(state: PathBuf, fs: Arc<dyn vfs::Vfs>) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        state_dir: state,
        queue_capacity: 8,
        workers: 1,
        http_threads: 2,
        pool_capacity: 2,
        checkpoint_wall: Duration::from_millis(200),
        vfs: fs,
        // Full retry budget, zero sleeps: the campaign exercises the retry
        // machinery without wall-clock cost.
        retry: RetryPolicy::fast(0),
        ..ServeConfig::default()
    }
}

fn body_field(body: &str, key: &str) -> Option<String> {
    serve::json::parse(body)
        .ok()?
        .get(key)
        .and_then(|v| v.as_str().map(str::to_string))
}

fn submit(addr: SocketAddr, query: &str, graph: &EdgeList) -> (u16, String) {
    let mut bytes = Vec::new();
    gio::write_edge_list(graph, &mut bytes).unwrap();
    let resp = client::post(addr, &format!("/jobs?{query}"), &bytes, T).unwrap();
    (resp.status, resp.text())
}

/// Poll until the job reaches any terminal phase; returns (phase, body).
fn wait_terminal(addr: SocketAddr, id: &str, deadline: Duration) -> (String, String) {
    let t0 = Instant::now();
    loop {
        let resp = client::get(addr, &format!("/jobs/{id}"), T).unwrap();
        let body = resp.text();
        let phase = body_field(&body, "phase").unwrap_or_default();
        if matches!(phase.as_str(), "completed" | "failed" | "cancelled") {
            return (phase, body);
        }
        assert!(
            t0.elapsed() < deadline,
            "timed out waiting for {id} to settle; last status: {body}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn sample_bytes(addr: SocketAddr, id: &str, k: usize) -> Vec<u8> {
    let resp = client::get(addr, &format!("/jobs/{id}/samples/{k}"), T).unwrap();
    assert_eq!(resp.status, 200, "sample {k} of {id} missing");
    resp.body
}

const JOB_QUERY: &str = "samples=1&sweeps=3&seed=11";

/// Fault-free serve flow through a counting FaultVfs: returns the sample
/// bytes and the total op-index space one boot+submit+complete consumes.
fn reference(name: &str) -> (Vec<u8>, u64) {
    let counter = Arc::new(FaultVfs::scripted(HashMap::new()));
    let server = Server::start(config(tmp_state(name), counter.clone())).unwrap();
    let addr = server.local_addr();
    let (status, body) = submit(addr, JOB_QUERY, &ring(32));
    assert_eq!(status, 202, "{body}");
    let id = body_field(&body, "id").unwrap();
    let (phase, status_body) = wait_terminal(addr, &id, Duration::from_secs(60));
    assert_eq!(phase, "completed", "{status_body}");
    let bytes = sample_bytes(addr, &id, 0);
    server.request_drain();
    server.join();
    let ops = counter.fault_stats().unwrap().ops_total;
    (bytes, ops)
}

#[test]
fn write_fault_campaign_every_op_is_identical_or_typed_and_resumable() {
    let (ref_bytes, ops_total) = reference("campaign_ref");
    assert!(ops_total >= 10, "serve flow too small: {ops_total} ops");

    for kind in [FaultKind::Enospc, FaultKind::Eio, FaultKind::TornRename] {
        for index in 0..ops_total {
            let tag = format!("campaign_{}_{index}", kind.name());
            let state = tmp_state(&tag);
            let faulty: Arc<dyn vfs::Vfs> = Arc::new(FaultVfs::single(index, kind));
            // No retry budget in the sweep: every injected fault must
            // surface typed instead of being silently absorbed.
            let mut cfg = config(state.clone(), faulty);
            cfg.retry = RetryPolicy::none();

            let mut accepted: Option<String> = None;
            match Server::start(cfg) {
                Err(BootError::UnwritableState { .. }) => {
                    // Typed fail-fast at boot; nothing was accepted, so
                    // nothing can be owed or torn.
                }
                Err(other) => panic!("{tag}: untyped boot failure: {other}"),
                Ok(server) => {
                    let addr = server.local_addr();
                    let (status, body) = submit(addr, JOB_QUERY, &ring(32));
                    match status {
                        202 => {
                            let id = body_field(&body, "id").unwrap();
                            let (phase, status_body) =
                                wait_terminal(addr, &id, Duration::from_secs(60));
                            match phase.as_str() {
                                "completed" => {
                                    assert_eq!(
                                        sample_bytes(addr, &id, 0),
                                        ref_bytes,
                                        "{tag}: completed job diverged"
                                    );
                                }
                                "failed" => {
                                    let code =
                                        body_field(&status_body, "error_code").unwrap_or_default();
                                    assert!(
                                        code == "storage_exhausted" || code == "storage_io",
                                        "{tag}: untyped job failure: {status_body}"
                                    );
                                    accepted = Some(id);
                                }
                                other => panic!("{tag}: unexpected terminal {other}"),
                            }
                        }
                        503 | 500 => {
                            let code = body_field(&body, "error_code").unwrap_or_default();
                            assert!(
                                code == "storage_exhausted" || code == "storage_io",
                                "{tag}: untyped shed: {status} {body}"
                            );
                        }
                        other => panic!("{tag}: unexpected submit status {other}: {body}"),
                    }
                    server.request_drain();
                    server.join();
                }
            }

            // Recovery boot over the same state dir with a clean VFS: a
            // failed-but-owed job resumes and completes byte-identically; a
            // terminally-failed job stays terminal with its typed code (its
            // spec/status must load — never half-written).
            if let Some(id) = accepted {
                let recovery =
                    Server::start(config(state.clone(), Arc::new(vfs::RealVfs))).unwrap();
                let addr = recovery.local_addr();
                let resp = client::get(addr, &format!("/jobs/{id}"), T).unwrap();
                assert_eq!(resp.status, 200, "{tag}: job lost across restart");
                let (phase, status_body) = wait_terminal(addr, &id, Duration::from_secs(60));
                match phase.as_str() {
                    "completed" => assert_eq!(
                        sample_bytes(addr, &id, 0),
                        ref_bytes,
                        "{tag}: recovered job diverged"
                    ),
                    "failed" => {
                        let code = body_field(&status_body, "error_code").unwrap_or_default();
                        assert!(
                            code == "storage_exhausted" || code == "storage_io",
                            "{tag}: recovery saw untyped failure: {status_body}"
                        );
                    }
                    other => panic!("{tag}: unexpected recovery terminal {other}"),
                }
                recovery.request_drain();
                recovery.join();
            }
            let _ = std::fs::remove_dir_all(&state);
        }
    }
}

#[test]
fn panicking_job_is_isolated_and_siblings_stay_byte_identical() {
    let mut cfg = config(tmp_state("panic_isolation"), Arc::new(vfs::RealVfs));
    cfg.chaos = true;
    let server = Server::start(cfg).unwrap();
    let addr = server.local_addr();
    let input = ring(32);

    // A job whose second member is scripted to panic, then a sibling with
    // the identical spec (and no panic).
    let (status, body) = submit(addr, "samples=2&sweeps=3&seed=11&panic_member=1", &input);
    assert_eq!(status, 202, "{body}");
    let poisoned = body_field(&body, "id").unwrap();
    let (status, body) = submit(addr, "samples=2&sweeps=3&seed=11", &input);
    assert_eq!(status, 202, "{body}");
    let sibling = body_field(&body, "id").unwrap();

    let (phase, status_body) = wait_terminal(addr, &poisoned, Duration::from_secs(60));
    assert_eq!(phase, "failed", "{status_body}");
    assert_eq!(
        body_field(&status_body, "error_code").as_deref(),
        Some("job_failed"),
        "{status_body}"
    );
    assert!(
        body_field(&status_body, "error")
            .unwrap_or_default()
            .contains("member 1 panicked"),
        "{status_body}"
    );

    // The server survived: healthz answers, and the sibling's ensemble is
    // byte-identical to the poisoned job's completed prefix (same seed,
    // same spec → member 0 must agree bit for bit).
    let resp = client::get(addr, "/healthz", T).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("\"ok\":true"), "{}", resp.text());

    let (phase, status_body) = wait_terminal(addr, &sibling, Duration::from_secs(60));
    assert_eq!(phase, "completed", "{status_body}");
    assert_eq!(
        sample_bytes(addr, &sibling, 0),
        sample_bytes(addr, &poisoned, 0),
        "panic in member 1 must not perturb member 0 or the sibling job"
    );

    // /metrics reports the panic and the fault-injection section.
    let resp = client::get(addr, "/metrics", T).unwrap();
    let metrics = resp.text();
    assert!(metrics.contains("\"panicked\": 1"), "{metrics}");
    assert!(metrics.contains("\"fault_injection\""), "{metrics}");

    server.request_drain();
    server.join();
}

#[test]
fn panic_member_requires_chaos_mode() {
    let server = Server::start(config(tmp_state("no_chaos"), Arc::new(vfs::RealVfs))).unwrap();
    let addr = server.local_addr();
    let (status, body) = submit(addr, "samples=1&sweeps=2&seed=1&panic_member=0", &ring(16));
    assert_eq!(status, 400, "{body}");
    assert_eq!(
        body_field(&body, "error_code").as_deref(),
        Some("bad_input")
    );
    server.request_drain();
    server.join();
}

#[test]
fn enospc_flips_admission_to_typed_shedding_and_recovers() {
    // Boot consumes the first few op indices (probe); a dense ENOSPC band
    // after that fails the first submission's durable persist, flips the
    // server into degraded shedding, and — once the band is spent — a
    // later probe succeeds and admission recovers. The exact index the
    // band starts at only needs to be past the boot probe.
    // Each shed probe burns one op (its create_dir_all faults first), so
    // the loop bound below must comfortably exceed the band width.
    let faulty = Arc::new(FaultVfs::from_script_str("enospc@8-24").unwrap());
    let server = Server::start(config(tmp_state("degrade"), faulty.clone())).unwrap();
    let addr = server.local_addr();
    let input = ring(16);

    let mut saw_storage_shed = false;
    let mut recovered_id = None;
    for _ in 0..40 {
        let (status, body) = submit(addr, "samples=1&sweeps=2&seed=3", &input);
        match status {
            202 => {
                recovered_id = Some(body_field(&body, "id").unwrap());
                break;
            }
            503 => {
                assert_eq!(
                    body_field(&body, "error_code").as_deref(),
                    Some("storage_exhausted"),
                    "{body}"
                );
                assert!(
                    serve::json::parse(&body)
                        .unwrap()
                        .get("retry_after_ms")
                        .and_then(serve::json::Value::as_u64)
                        .is_some(),
                    "shed body must carry a retry hint: {body}"
                );
                saw_storage_shed = true;
            }
            other => panic!("unexpected submit status {other}: {body}"),
        }
    }
    assert!(saw_storage_shed, "the ENOSPC band never shed a submission");
    let id = recovered_id.expect("admission never recovered after the ENOSPC band");
    let (phase, status_body) = wait_terminal(addr, &id, Duration::from_secs(60));
    assert_eq!(phase, "completed", "{status_body}");

    // The degradation episode is visible to operators.
    let resp = client::get(addr, "/metrics", T).unwrap();
    let metrics = resp.text();
    assert!(metrics.contains("\"shed_storage\""), "{metrics}");
    assert!(metrics.contains("\"injected_total\""), "{metrics}");
    let stats = faulty.fault_stats().unwrap();
    assert!(stats.injected_total > 0, "band never fired");

    server.request_drain();
    server.join();
}

#[test]
fn healthz_reports_the_degraded_flag() {
    let server = Server::start(config(tmp_state("healthz"), Arc::new(vfs::RealVfs))).unwrap();
    let addr = server.local_addr();
    let resp = client::get(addr, "/healthz", T).unwrap();
    assert_eq!(resp.status, 200);
    let text = resp.text();
    assert!(text.contains("\"degraded\":false"), "{text}");
    server.request_drain();
    server.join();
}
