//! End-to-end tests of the ensemble server over real sockets: the happy
//! path, load shedding, cancellation, and drain → restart → resume
//! byte-identity against the in-process reference ensemble.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use graphcore::{io as gio, EdgeList};
use serve::client;
use serve::{ServeConfig, Server};

const T: Duration = Duration::from_secs(30);

fn ring(n: u32) -> EdgeList {
    EdgeList::from_pairs((0..n).map(|i| (i, (i + 1) % n)))
}

fn tmp_state(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("nullgraph_serve_api_tests")
        .join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn test_config(state: PathBuf) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        state_dir: state,
        queue_capacity: 8,
        workers: 1,
        http_threads: 2,
        pool_capacity: 2,
        checkpoint_wall: Duration::from_millis(200),
        ..ServeConfig::default()
    }
}

fn body_field(body: &str, key: &str) -> Option<String> {
    serve::json::parse(body)
        .ok()?
        .get(key)
        .and_then(|v| v.as_str().map(str::to_string))
}

fn submit(addr: SocketAddr, query: &str, graph: &EdgeList) -> (u16, String) {
    let mut bytes = Vec::new();
    gio::write_edge_list(graph, &mut bytes).unwrap();
    let resp = client::post(addr, &format!("/jobs?{query}"), &bytes, T).unwrap();
    (resp.status, resp.text())
}

fn wait_phase(addr: SocketAddr, id: &str, want: &str, deadline: Duration) -> String {
    let t0 = Instant::now();
    loop {
        let resp = client::get(addr, &format!("/jobs/{id}"), T).unwrap();
        let phase = body_field(&resp.text(), "phase").unwrap_or_default();
        if phase == want {
            return phase;
        }
        assert!(
            t0.elapsed() < deadline,
            "timed out waiting for {id} to reach {want}; last status: {}",
            resp.text()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn reference_sample_bytes(input: &EdgeList, sweeps: usize, seed: u64, k: usize) -> Vec<u8> {
    let ensemble = nullmodel::try_mix_ensemble_from_edge_list(input, sweeps, seed, k + 1).unwrap();
    let mut bytes = Vec::new();
    gio::write_edge_list(&ensemble[k], &mut bytes).unwrap();
    bytes
}

#[test]
fn submit_complete_fetch_matches_reference_byte_for_byte() {
    let server = Server::start(test_config(tmp_state("happy"))).unwrap();
    let addr = server.local_addr();
    let input = ring(64);

    let (status, body) = submit(addr, "samples=3&sweeps=5&seed=42", &input);
    assert_eq!(status, 202, "{body}");
    let id = body_field(&body, "id").unwrap();

    wait_phase(addr, &id, "completed", Duration::from_secs(60));
    for k in 0..3 {
        let resp = client::get(addr, &format!("/jobs/{id}/samples/{k}"), T).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body,
            reference_sample_bytes(&input, 5, 42, k),
            "sample {k} differs from the in-process reference ensemble"
        );
    }

    // The stream endpoint replays all members of a finished job.
    let resp = client::get(addr, &format!("/jobs/{id}/stream"), T).unwrap();
    let text = resp.text();
    assert!(
        text.contains("# sample 0") && text.contains("# sample 2"),
        "{text}"
    );
    assert!(text.contains("# end completed"), "{text}");

    // Out-of-range and unknown lookups are typed 404s.
    let resp = client::get(addr, &format!("/jobs/{id}/samples/99"), T).unwrap();
    assert_eq!(resp.status, 404);
    let resp = client::get(addr, "/jobs/zzz", T).unwrap();
    assert_eq!(resp.status, 404);
    assert_eq!(
        body_field(&resp.text(), "error_code").as_deref(),
        Some("not_found")
    );

    server.request_drain();
    server.join();
}

#[test]
fn bad_submissions_are_typed_400s() {
    let server = Server::start(test_config(tmp_state("badreq"))).unwrap();
    let addr = server.local_addr();

    let resp = client::post(addr, "/jobs?samples=3", b"this is not an edge list", T).unwrap();
    assert_eq!(resp.status, 400);
    assert_eq!(
        body_field(&resp.text(), "error_code").as_deref(),
        Some("bad_input")
    );

    let (status, body) = submit(addr, "samples=0", &ring(8));
    assert_eq!(status, 400, "{body}");
    let (status, body) = submit(addr, "samples=abc", &ring(8));
    assert_eq!(status, 400, "{body}");

    server.request_drain();
    server.join();
}

#[test]
fn overload_sheds_typed_errors_while_accepted_jobs_complete() {
    let mut config = test_config(tmp_state("overload"));
    config.queue_capacity = 2;
    let server = Server::start(config).unwrap();
    let addr = server.local_addr();
    let input = ring(512);

    // Flood: far more submissions than the queue holds. The first worker
    // is busy on the first job, so later submissions pile into the
    // bounded queue and overflow it.
    let mut accepted = Vec::new();
    let mut shed = 0usize;
    for _ in 0..12 {
        let (status, body) = submit(addr, "samples=2&sweeps=40&seed=7", &input);
        match status {
            202 => accepted.push(body_field(&body, "id").unwrap()),
            503 => {
                assert_eq!(
                    body_field(&body, "error_code").as_deref(),
                    Some("overloaded"),
                    "{body}"
                );
                assert!(body.contains("retry_after_ms"), "{body}");
                shed += 1;
            }
            other => panic!("unexpected status {other}: {body}"),
        }
    }
    assert!(
        shed > 0,
        "queue of 2 absorbed 12 concurrent-ish submissions"
    );
    assert!(!accepted.is_empty());

    // Every accepted job still completes — shedding protects, it never
    // drops admitted work.
    for id in &accepted {
        wait_phase(addr, id, "completed", Duration::from_secs(120));
    }

    let resp = client::get(addr, "/metrics", T).unwrap();
    assert_eq!(resp.status, 200);
    let metrics = resp.text();
    assert!(
        metrics.contains("\"schema\": \"serve_metrics_v1\""),
        "{metrics}"
    );

    server.request_drain();
    server.join();
}

#[test]
fn cancel_is_cooperative_and_typed() {
    let server = Server::start(test_config(tmp_state("cancel"))).unwrap();
    let addr = server.local_addr();

    // A job big enough to still be running when the cancel lands.
    let (status, body) = submit(
        addr,
        "samples=50&sweeps=400&seed=3&ckpt_sweeps=1",
        &ring(2048),
    );
    assert_eq!(status, 202, "{body}");
    let id = body_field(&body, "id").unwrap();

    let resp = client::post(addr, &format!("/jobs/{id}/cancel"), &[], T).unwrap();
    assert_eq!(resp.status, 200);
    wait_phase(addr, &id, "cancelled", Duration::from_secs(60));

    // Cancelling a terminal job is a typed conflict.
    let resp = client::post(addr, &format!("/jobs/{id}/cancel"), &[], T).unwrap();
    assert_eq!(resp.status, 409);
    assert_eq!(
        body_field(&resp.text(), "error_code").as_deref(),
        Some("job_already_terminal")
    );

    server.request_drain();
    server.join();
}

#[test]
fn drain_checkpoints_and_restart_resumes_byte_identically() {
    let state = tmp_state("drain-resume");
    let input = ring(1024);
    let (sweeps, seed, samples) = (60usize, 99u64, 4usize);

    let id = {
        let server = Server::start(test_config(state.clone())).unwrap();
        let addr = server.local_addr();
        let (status, body) = submit(
            addr,
            &format!("samples={samples}&sweeps={sweeps}&seed={seed}&ckpt_sweeps=1"),
            &input,
        );
        assert_eq!(status, 202, "{body}");
        let id = body_field(&body, "id").unwrap();

        // Let it get some work done, then drain mid-job.
        std::thread::sleep(Duration::from_millis(150));
        let resp = client::post(addr, "/admin/drain", &[], T).unwrap();
        assert_eq!(resp.status, 200);

        // A drained server sheds new submissions with the typed error.
        let (status, body) = submit(addr, "samples=1", &ring(8));
        assert_eq!(status, 503, "{body}");
        assert_eq!(
            body_field(&body, "error_code").as_deref(),
            Some("overloaded")
        );
        assert!(body.contains("draining"), "{body}");

        server.join();
        id
    };

    // "Restart": a new server over the same state dir re-admits the owed
    // job and finishes it.
    let server = Server::start(test_config(state)).unwrap();
    let addr = server.local_addr();
    wait_phase(addr, &id, "completed", Duration::from_secs(120));

    for k in 0..samples {
        let resp = client::get(addr, &format!("/jobs/{id}/samples/{k}"), T).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(
            resp.body,
            reference_sample_bytes(&input, sweeps, seed, k),
            "sample {k} after drain+restart differs from an uninterrupted run"
        );
    }

    server.request_drain();
    server.join();
}

#[test]
fn healthz_reports_drain_state() {
    let server = Server::start(test_config(tmp_state("healthz"))).unwrap();
    let addr = server.local_addr();
    let resp = client::get(addr, "/healthz", T).unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.text().contains("\"draining\":false"));
    server.request_drain();
    let resp = client::get(addr, "/healthz", T).unwrap();
    assert!(resp.text().contains("\"draining\":true"));
    server.join();
}
