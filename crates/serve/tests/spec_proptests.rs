//! Parser-robustness properties for the durable job documents.
//!
//! `spec.json` and `status.json` are the server's crash-recovery ground
//! truth: the boot scan feeds whatever bytes survived a fault back through
//! these parsers. A torn write must therefore surface as a *typed* parse
//! error — never a panic, never a silently mis-parsed job. The truncation
//! sweeps cover every strict prefix a torn write could leave behind (the
//! atomic protocol makes such prefixes unreachable, but the parser is the
//! last line of defence); the proptest corruption pass flips arbitrary
//! bytes and demands totality.

use proptest_lite::prelude::*;
use serve::job::{parse_status, status_doc, JobSpec, Phase};
use swap::StopRule;

/// A spec exercising every optional field, so the truncation sweep walks
/// through every parse path.
fn full_spec() -> JobSpec {
    JobSpec {
        id: "j00000042".into(),
        samples: 4,
        sweeps: 10,
        stop: StopRule::Converged {
            min_ess: 64,
            window: 128,
        },
        seed: 0xDEAD_BEEF,
        budget_ms: Some(1_500),
        max_grows: 3,
        serial_fallback: true,
        ckpt_sweeps: Some(2),
        panic_member: Some(1),
    }
}

#[test]
fn spec_round_trips() {
    let spec = full_spec();
    let parsed = JobSpec::from_json(&spec.to_json()).expect("valid spec parses");
    assert_eq!(parsed, spec);
}

#[test]
fn every_spec_truncation_is_a_typed_error() {
    let text = full_spec().to_json();
    for cut in 0..text.len() {
        let prefix = &text[..cut];
        match JobSpec::from_json(prefix) {
            Err(msg) => assert!(!msg.is_empty(), "empty diagnostic at cut {cut}"),
            Ok(_) => panic!("strict prefix parsed as a full spec at cut {cut}: {prefix:?}"),
        }
    }
}

#[test]
fn every_status_truncation_is_a_typed_error() {
    for phase in [
        Phase::Completed,
        Phase::Cancelled,
        Phase::Failed("storage_io".into(), "fsync: injected eio".into()),
    ] {
        let text = status_doc("j00000042", &phase, 2, 4);
        for cut in 0..text.len() {
            match parse_status(&text[..cut]) {
                Err(msg) => assert!(!msg.is_empty(), "empty diagnostic at cut {cut}"),
                Ok(_) => panic!("strict status prefix parsed at cut {cut}"),
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Single-byte corruption anywhere in a valid spec: the parser is
    /// total — it returns `Ok` or a typed `Err`, and never panics. (The
    /// replacement byte stays printable ASCII so the document remains
    /// valid UTF-8; lower layers hand the parser `&str`.)
    #[test]
    fn corrupted_spec_bytes_never_panic(pos in any::<u64>(), byte in 0x20u8..0x7f) {
        let mut bytes = full_spec().to_json().into_bytes();
        let idx = (pos % bytes.len() as u64) as usize;
        bytes[idx] = byte;
        let text = String::from_utf8(bytes).expect("ascii stays utf-8");
        let _ = JobSpec::from_json(&text);
    }

    #[test]
    fn corrupted_status_bytes_never_panic(pos in any::<u64>(), byte in 0x20u8..0x7f) {
        let doc = status_doc(
            "j00000042",
            &Phase::Failed("storage_exhausted".into(), "disk full".into()),
            1,
            4,
        );
        let mut bytes = doc.into_bytes();
        let idx = (pos % bytes.len() as u64) as usize;
        bytes[idx] = byte;
        let text = String::from_utf8(bytes).expect("ascii stays utf-8");
        let _ = parse_status(&text);
    }
}
