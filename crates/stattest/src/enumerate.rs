//! Exact enumeration of the simple graphs realizing a small degree
//! sequence.
//!
//! For `n ≤ 8` vertices there are at most `C(8,2) = 28` vertex pairs, so a
//! labeled simple graph packs into a `u32` bitmask over the lexicographic
//! pair order. Enumerating every realization of a degree sequence turns the
//! swap chain's "uniform over all realizations" claim into a testable
//! hypothesis: sample the chain, map each sample to its mask, and
//! chi-square the resulting histogram against the exact uniform
//! distribution (see [`crate::harness`]).
//!
//! The enumeration is a straightforward backtracking search over pairs in
//! lexicographic order with residual-degree pruning; the state space at
//! `n ≤ 8` is tiny (the largest support used by the tests has a few
//! hundred graphs), so no sophistication is needed — only correctness.

use graphcore::EdgeList;

/// Largest vertex count the mask encoding supports (`C(8,2) = 28 ≤ 32`).
pub const MAX_VERTICES: usize = 8;

/// Lexicographic index of the pair `(u, v)` with `u < v` among all pairs of
/// `n` vertices: pairs are ordered `(0,1), (0,2), ..., (0,n−1), (1,2), ...`.
#[inline]
pub fn pair_index(n: usize, u: usize, v: usize) -> usize {
    debug_assert!(u < v && v < n);
    u * (2 * n - u - 1) / 2 + (v - u - 1)
}

/// The complete set of labeled simple graphs realizing one degree sequence,
/// each encoded as a `u32` bitmask over [`pair_index`] positions.
#[derive(Clone, Debug)]
pub struct Realizations {
    n: usize,
    masks: Vec<u32>,
}

impl Realizations {
    /// Enumerate every labeled simple graph on `seq.len()` vertices whose
    /// degree sequence equals `seq`. Returns `None` when the sequence has
    /// more than [`MAX_VERTICES`] vertices. A non-graphical sequence yields
    /// an empty support.
    pub fn enumerate(seq: &[u32]) -> Option<Self> {
        let n = seq.len();
        if n > MAX_VERTICES {
            return None;
        }
        let stub_sum: u64 = seq.iter().map(|&d| d as u64).sum();
        if !stub_sum.is_multiple_of(2) || seq.iter().any(|&d| d as usize >= n.max(1)) {
            return Some(Self {
                n,
                masks: Vec::new(),
            });
        }
        let mut residual: Vec<u32> = seq.to_vec();
        let mut masks = Vec::new();
        // Pair list in lexicographic order, so mask bit i == pair_index order.
        let mut pairs = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                pairs.push((u, v));
            }
        }
        backtrack(&pairs, 0, 0, &mut residual, &mut masks);
        masks.sort_unstable();
        Some(Self { n, masks })
    }

    /// Number of vertices of every graph in the support.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Number of distinct realizations.
    pub fn support_size(&self) -> usize {
        self.masks.len()
    }

    /// The sorted masks.
    pub fn masks(&self) -> &[u32] {
        &self.masks
    }

    /// Index of `mask` within the sorted support, or `None` when `mask` is
    /// not a realization of the sequence.
    pub fn index_of(&self, mask: u32) -> Option<usize> {
        self.masks.binary_search(&mask).ok()
    }

    /// Canonical mask of an [`EdgeList`] over this support's vertex count.
    /// Returns `None` when the graph is not simple, has a different vertex
    /// count, or contains an out-of-range endpoint.
    pub fn mask_of(&self, graph: &EdgeList) -> Option<u32> {
        if graph.num_vertices() != self.n {
            return None;
        }
        edge_list_mask(graph)
    }
}

/// Encode a simple [`EdgeList`] on `≤ 8` vertices as a pair-index bitmask.
/// Returns `None` for self loops, duplicate edges, or too many vertices.
pub fn edge_list_mask(graph: &EdgeList) -> Option<u32> {
    let n = graph.num_vertices();
    if n > MAX_VERTICES {
        return None;
    }
    let mut mask = 0u32;
    for e in graph.edges() {
        let (u, v) = (e.u() as usize, e.v() as usize);
        if u == v || v >= n {
            return None;
        }
        let bit = 1u32 << pair_index(n, u, v);
        if mask & bit != 0 {
            return None; // duplicate edge
        }
        mask |= bit;
    }
    Some(mask)
}

/// Depth-first search over pairs: each pair is either excluded or included
/// (consuming one residual degree at both endpoints). Prunes when a vertex
/// can no longer reach zero residual with the pairs remaining.
fn backtrack(
    pairs: &[(usize, usize)],
    idx: usize,
    mask: u32,
    residual: &mut [u32],
    out: &mut Vec<u32>,
) {
    if idx == pairs.len() {
        if residual.iter().all(|&r| r == 0) {
            out.push(mask);
        }
        return;
    }
    let (u, v) = pairs[idx];
    // Prune: once the lexicographic scan moves past vertex `u`, no later
    // pair can touch any vertex `< u`; their residuals must already be 0.
    // (Pairs are sorted by `u`, so check only the current `u`'s feasibility
    // against its remaining pairs: at most `n − 1 − v + 1` pairs touch `u`
    // from `(u, v)` onward.)
    let n = residual.len();
    let remaining_for_u = (n - v) as u32; // pairs (u,v), (u,v+1), ..., (u,n−1)
    if residual[u] > remaining_for_u {
        return; // u can never be saturated
    }
    // Option 1: exclude the pair — legal only while u stays satisfiable
    // (residual[u] == remaining_for_u forces inclusion).
    if residual[u] < remaining_for_u {
        backtrack(pairs, idx + 1, mask, residual, out);
    }
    // Option 2: include the pair.
    if residual[u] > 0 && residual[v] > 0 {
        residual[u] -= 1;
        residual[v] -= 1;
        backtrack(pairs, idx + 1, mask | (1 << idx), residual, out);
        residual[u] += 1;
        residual[v] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::EdgeList;

    #[test]
    fn pair_index_is_lexicographic() {
        let n = 5;
        let mut expect = 0;
        for u in 0..n {
            for v in (u + 1)..n {
                assert_eq!(pair_index(n, u, v), expect);
                expect += 1;
            }
        }
        assert_eq!(expect, n * (n - 1) / 2);
    }

    #[test]
    fn triangle_unique_realization() {
        let r = Realizations::enumerate(&[2, 2, 2]).unwrap();
        assert_eq!(r.support_size(), 1);
        let g = EdgeList::from_pairs([(0, 1), (0, 2), (1, 2)]);
        assert_eq!(r.mask_of(&g), Some(r.masks()[0]));
    }

    #[test]
    fn path_sequence_multiple_realizations() {
        // [1,1,2]: one vertex of degree 2 — always the middle of a path.
        // Labeled paths on 3 vertices with degree seq (1,1,2) in THIS vertex
        // order: vertex 2 is the center, so edges {0,2},{1,2} — exactly one.
        let r = Realizations::enumerate(&[1, 1, 2]).unwrap();
        assert_eq!(r.support_size(), 1);
        // [2,1,1]: vertex 0 is the center: edges {0,1},{0,2} — one again.
        let r = Realizations::enumerate(&[2, 1, 1]).unwrap();
        assert_eq!(r.support_size(), 1);
    }

    #[test]
    fn known_support_sizes() {
        // Degree sequence [1,1,1,1]: perfect matchings of K4 = 3.
        assert_eq!(Realizations::enumerate(&[1; 4]).unwrap().support_size(), 3);
        // 2-regular on 4 vertices: 4-cycles on 4 labeled vertices = 3.
        assert_eq!(Realizations::enumerate(&[2; 4]).unwrap().support_size(), 3);
        // 2-regular on 5 vertices: 5-cycles = 5!/(5·2) = 12.
        assert_eq!(Realizations::enumerate(&[2; 5]).unwrap().support_size(), 12);
        // 2-regular on 6 vertices: 6-cycles (6!/(6·2) = 60) plus
        // two disjoint triangles (C(6,3)/2 = 10) = 70.
        assert_eq!(Realizations::enumerate(&[2; 6]).unwrap().support_size(), 70);
        // 3-regular on 4 vertices: K4 only.
        assert_eq!(Realizations::enumerate(&[3; 4]).unwrap().support_size(), 1);
        // [2,2,2,1,1]: path of 5 plus triangle+edge arrangements; count by
        // brute force cross-check below.
        let r = Realizations::enumerate(&[2, 2, 2, 1, 1]).unwrap();
        assert_eq!(r.support_size(), brute_force_count(&[2, 2, 2, 1, 1]));
    }

    #[test]
    fn agrees_with_brute_force_on_random_sequences() {
        for seq in [
            vec![1, 2, 3, 2, 1, 1],
            vec![3, 3, 2, 2, 2],
            vec![2, 2, 2, 2, 1, 1],
            vec![4, 2, 2, 2, 2],
            vec![3, 3, 3, 3],
            vec![1, 1, 1],    // odd stub sum → empty
            vec![5, 1, 1, 1], // non-graphical → empty
        ] {
            let r = Realizations::enumerate(&seq).unwrap();
            assert_eq!(
                r.support_size(),
                brute_force_count(&seq),
                "sequence {seq:?}"
            );
        }
    }

    #[test]
    fn masks_sorted_and_indexable() {
        let r = Realizations::enumerate(&[2; 6]).unwrap();
        let masks = r.masks();
        assert!(masks.windows(2).all(|w| w[0] < w[1]));
        for (i, &m) in masks.iter().enumerate() {
            assert_eq!(r.index_of(m), Some(i));
        }
        assert_eq!(r.index_of(u32::MAX), None);
    }

    #[test]
    fn rejects_large_n() {
        assert!(Realizations::enumerate(&[1; 9]).is_none());
    }

    #[test]
    fn mask_of_rejects_wrong_shape() {
        let r = Realizations::enumerate(&[2, 2, 2]).unwrap();
        // Wrong vertex count.
        let g4 = EdgeList::from_pairs([(0, 1), (1, 2), (2, 3), (0, 3)]);
        assert_eq!(r.mask_of(&g4), None);
        // Duplicate edge.
        let mut dup = EdgeList::new(3);
        dup.push(graphcore::Edge::new(0, 1));
        dup.push(graphcore::Edge::new(1, 0));
        assert_eq!(edge_list_mask(&dup), None);
        // Self loop.
        let mut lp = EdgeList::new(3);
        lp.push(graphcore::Edge::new(1, 1));
        assert_eq!(edge_list_mask(&lp), None);
    }

    /// Exhaustive check over all 2^C(n,2) graphs — the ground truth the
    /// backtracking search must match.
    fn brute_force_count(seq: &[u32]) -> usize {
        let n = seq.len();
        let bits = n * (n - 1) / 2;
        let mut pairs = Vec::new();
        for u in 0..n {
            for v in (u + 1)..n {
                pairs.push((u, v));
            }
        }
        let mut count = 0;
        for mask in 0u32..(1u32 << bits) {
            let mut deg = vec![0u32; n];
            for (i, &(u, v)) in pairs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    deg[u] += 1;
                    deg[v] += 1;
                }
            }
            if deg == seq {
                count += 1;
            }
        }
        count
    }
}
