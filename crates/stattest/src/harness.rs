//! End-to-end statistical harnesses for the workspace's generators.
//!
//! * [`SwapUniformityHarness`] — samples the double-edge-swap MCMC on a
//!   small degree sequence many times and chi-square tests the empirical
//!   distribution over the **exactly enumerated** realization support
//!   against uniform (the chain's claimed stationary distribution).
//!   Includes an intentionally-biased control sampler (swap sweeps with
//!   the permutation step skipped — a non-irreducible chain) that a sound
//!   harness must *reject*, demonstrating statistical power.
//! * [`EdgeSkipExpectationHarness`] — generates many graphs with the
//!   Bernoulli edge-skipping generator and binomially tests every vertex
//!   pair's empirical edge frequency against its class-pair probability
//!   from `genprob`.
//!
//! Both harnesses apply a Bonferroni correction across their multiple
//! comparisons and produce machine-readable verdicts ([`UniformityVerdict`],
//! [`ExpectationVerdict`]) with a hand-rolled JSON encoding (no serde
//! dependency).

use crate::enumerate::{pair_index, Realizations, MAX_VERTICES};
use crate::stats::{binomial_two_sided, chi_square_uniform, TestOutcome};
use generators::havel_hakimi_sequence;
use graphcore::{DegreeDistribution, DegreeSequence, Edge, EdgeList};
use parutil::rng::mix64;
use rayon::prelude::*;
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;
use swap::SwapWorkspace;

/// Which sampler a uniformity run drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplerKind {
    /// The real chain: [`swap::swap_edges`] (parallel path).
    SwapParallel,
    /// The serial reference chain: [`swap::swap_edges_serial`].
    SwapSerial,
    /// Control with a deliberately broken chain: swap sweeps over **fixed**
    /// adjacent pairs, never permuting the edge list. The pairing graph is
    /// frozen, the chain is not irreducible, and the empirical distribution
    /// concentrates on a strict subset of the support — the harness must
    /// reject this sampler or it has no power.
    BiasedNoPermutation,
}

impl SamplerKind {
    fn label(&self) -> &'static str {
        match self {
            SamplerKind::SwapParallel => "swap-parallel",
            SamplerKind::SwapSerial => "swap-serial",
            SamplerKind::BiasedNoPermutation => "biased-no-permutation",
        }
    }
}

/// Configuration of a uniformity run.
#[derive(Clone, Debug)]
pub struct UniformityConfig {
    /// Swap sweeps (full permute-and-swap iterations) per sample. Must be
    /// large enough to mix; tiny graphs mix in tens of sweeps.
    pub sweeps: usize,
    /// Independent chain samples per replicate.
    pub trials: u64,
    /// Independent replicates; the family-wise `alpha` is Bonferroni-split
    /// across them, and the run rejects when **any** replicate rejects.
    pub replicates: usize,
    /// Family-wise significance level.
    pub alpha: f64,
    /// Base RNG seed; every (replicate, trial) derives its own seed via
    /// [`mix64`], so runs are fully reproducible.
    pub base_seed: u64,
}

impl Default for UniformityConfig {
    fn default() -> Self {
        Self {
            sweeps: 30,
            trials: 2_000,
            replicates: 2,
            alpha: 1e-4,
            base_seed: 0x5EED_CAFE,
        }
    }
}

/// Why a harness could not be constructed or run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HarnessError {
    /// More than [`MAX_VERTICES`] vertices — the exact enumeration only
    /// covers `n ≤ 8`.
    TooManyVertices(usize),
    /// The degree sequence admits no simple realization.
    NotGraphical,
    /// A sampled graph fell outside the enumerated support (this is a
    /// *generator bug*, not a statistical rejection: swaps must preserve
    /// the degree sequence and simplicity exactly).
    SampleOutsideSupport { replicate: usize, trial: u64 },
}

impl fmt::Display for HarnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HarnessError::TooManyVertices(n) => {
                write!(
                    f,
                    "exact enumeration supports n <= {MAX_VERTICES}, got n = {n}"
                )
            }
            HarnessError::NotGraphical => write!(f, "degree sequence is not graphical"),
            HarnessError::SampleOutsideSupport { replicate, trial } => write!(
                f,
                "sample (replicate {replicate}, trial {trial}) is not a realization \
                 of the degree sequence — generator invariant violated"
            ),
        }
    }
}

impl std::error::Error for HarnessError {}

/// One replicate's chi-square result.
#[derive(Clone, Debug)]
pub struct ReplicateResult {
    /// Chi-square of the observed support histogram against uniform.
    pub outcome: TestOutcome,
    /// Observed counts per support index (sorted-mask order).
    pub counts: Vec<u64>,
}

/// Machine-readable verdict of a uniformity run.
#[derive(Clone, Debug)]
pub struct UniformityVerdict {
    /// The tested degree sequence.
    pub sequence: Vec<u32>,
    /// Which sampler was driven.
    pub sampler: &'static str,
    /// Exact number of simple realizations.
    pub support_size: usize,
    /// Samples per replicate.
    pub trials: u64,
    /// Per-replicate results.
    pub replicates: Vec<ReplicateResult>,
    /// Bonferroni-corrected per-replicate significance (`alpha / replicates`).
    pub per_replicate_alpha: f64,
    /// Smallest replicate p-value.
    pub min_p: f64,
    /// `true` when any replicate rejects at the corrected level.
    pub rejected: bool,
}

impl UniformityVerdict {
    /// Hand-rolled JSON encoding (stable field order, no serde).
    pub fn to_json(&self) -> String {
        let seq: Vec<String> = self.sequence.iter().map(u32::to_string).collect();
        let ps: Vec<String> = self
            .replicates
            .iter()
            .map(|r| format!("{:.6e}", r.outcome.p_value))
            .collect();
        let chis: Vec<String> = self
            .replicates
            .iter()
            .map(|r| format!("{:.4}", r.outcome.statistic))
            .collect();
        format!(
            concat!(
                "{{\"kind\":\"uniformity\",\"sampler\":\"{}\",\"sequence\":[{}],",
                "\"support_size\":{},\"trials\":{},\"replicates\":{},",
                "\"chi_square\":[{}],\"p_values\":[{}],",
                "\"per_replicate_alpha\":{:e},\"min_p\":{:.6e},\"rejected\":{}}}"
            ),
            self.sampler,
            seq.join(","),
            self.support_size,
            self.trials,
            self.replicates.len(),
            chis.join(","),
            ps.join(","),
            self.per_replicate_alpha,
            self.min_p,
            self.rejected,
        )
    }
}

impl fmt::Display for UniformityVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "uniformity[{}] over {:?}: support = {}, {} x {} trials",
            self.sampler,
            self.sequence,
            self.support_size,
            self.replicates.len(),
            self.trials
        )?;
        for (i, r) in self.replicates.iter().enumerate() {
            writeln!(
                f,
                "  replicate {i}: chi2 = {:.3} (dof {}), p = {:.4e}",
                r.outcome.statistic, r.outcome.dof, r.outcome.p_value
            )?;
        }
        write!(
            f,
            "  verdict: {} (min p = {:.4e}, per-replicate alpha = {:.2e})",
            if self.rejected {
                "REJECTED"
            } else {
                "not rejected"
            },
            self.min_p,
            self.per_replicate_alpha
        )
    }
}

/// Exact-enumeration uniformity harness for the swap MCMC.
#[derive(Debug)]
pub struct SwapUniformityHarness {
    sequence: Vec<u32>,
    start: EdgeList,
    support: Realizations,
}

impl SwapUniformityHarness {
    /// Build the harness for one degree sequence: enumerate its exact
    /// realization support and construct the Havel–Hakimi starting graph.
    pub fn new(sequence: &[u32]) -> Result<Self, HarnessError> {
        let support = Realizations::enumerate(sequence)
            .ok_or(HarnessError::TooManyVertices(sequence.len()))?;
        let start = havel_hakimi_sequence(&DegreeSequence::new(sequence.to_vec()))
            .ok_or(HarnessError::NotGraphical)?;
        debug_assert!(support.support_size() > 0);
        Ok(Self {
            sequence: sequence.to_vec(),
            start,
            support,
        })
    }

    /// Exact realization support.
    pub fn support(&self) -> &Realizations {
        &self.support
    }

    /// Run the harness: `cfg.replicates` independent histograms of
    /// `cfg.trials` chain samples each, chi-square tested against uniform
    /// with Bonferroni-corrected significance.
    pub fn run(
        &self,
        kind: SamplerKind,
        cfg: &UniformityConfig,
    ) -> Result<UniformityVerdict, HarnessError> {
        self.run_with_metrics(kind, cfg, None)
    }

    /// As [`run`](Self::run), attaching an [`obs::Metrics`] registry to
    /// every per-thread swap workspace so the whole battery's proposals,
    /// accepts and reject causes accumulate in one place. Counting is
    /// read-only: verdicts are identical with or without a registry.
    pub fn run_with_metrics(
        &self,
        kind: SamplerKind,
        cfg: &UniformityConfig,
        metrics: Option<&Arc<obs::Metrics>>,
    ) -> Result<UniformityVerdict, HarnessError> {
        let support_size = self.support.support_size();
        let per_replicate_alpha = cfg.alpha / cfg.replicates.max(1) as f64;
        let mut replicates = Vec::with_capacity(cfg.replicates);
        let mut min_p = f64::INFINITY;
        for rep in 0..cfg.replicates {
            let rep_seed = mix64(cfg.base_seed ^ mix64(rep as u64 ^ 0x9E37_79B9_7F4A_7C15));
            // Trials are embarrassingly parallel; each derives its own seed
            // so the histogram is independent of execution order. `fold`
            // gives every rayon split one long-lived swap workspace, so
            // consecutive trials on a thread reuse the same buffers.
            let indices: Vec<(u64, Option<usize>)> = (0..cfg.trials)
                .into_par_iter()
                .fold(
                    || {
                        let mut ws = SwapWorkspace::new();
                        ws.set_metrics(metrics.cloned());
                        (ws, Vec::new())
                    },
                    |(mut ws, mut acc), trial| {
                        let seed = mix64(rep_seed ^ mix64(trial ^ 0xD1B5_4A32_D192_ED03));
                        let mask = self.sample(kind, cfg.sweeps, seed, &mut ws);
                        acc.push((trial, self.support.index_of(mask)));
                        (ws, acc)
                    },
                )
                .map(|(_, acc)| acc)
                .collect::<Vec<_>>()
                .into_iter()
                .flatten()
                .collect();
            let mut counts = vec![0u64; support_size];
            for (trial, idx) in indices.into_iter() {
                match idx {
                    Some(i) => counts[i] += 1,
                    None => {
                        return Err(HarnessError::SampleOutsideSupport {
                            replicate: rep,
                            trial,
                        })
                    }
                }
            }
            let outcome = chi_square_uniform(&counts);
            min_p = min_p.min(outcome.p_value);
            replicates.push(ReplicateResult { outcome, counts });
        }
        let rejected = replicates
            .iter()
            .any(|r| r.outcome.rejected_at(per_replicate_alpha));
        Ok(UniformityVerdict {
            sequence: self.sequence.clone(),
            sampler: kind.label(),
            support_size,
            trials: cfg.trials,
            replicates,
            per_replicate_alpha,
            min_p,
            rejected,
        })
    }

    /// Draw one chain sample and encode it as a support mask.
    fn sample(&self, kind: SamplerKind, sweeps: usize, seed: u64, ws: &mut SwapWorkspace) -> u32 {
        let mut g = self.start.clone();
        match kind {
            SamplerKind::SwapParallel => {
                swap::swap_edges_with_workspace(&mut g, &swap::SwapConfig::new(sweeps, seed), ws);
            }
            SamplerKind::SwapSerial => {
                swap::swap_edges_serial_with_workspace(
                    &mut g,
                    &swap::SwapConfig::new(sweeps, seed),
                    ws,
                );
            }
            SamplerKind::BiasedNoPermutation => {
                biased_fixed_pairing_sweeps(&mut g, sweeps, seed);
            }
        }
        self.support
            .mask_of(&g)
            .expect("swap preserves degrees and simplicity")
    }
}

/// The intentionally broken control chain: identical swap proposals over
/// adjacent pairs, but the edge list is **never permuted**, so the pairing
/// is frozen for the whole run. Frozen pairings make the chain reducible
/// (most realization pairs are unreachable from each other), which a
/// correct uniformity test must detect.
fn biased_fixed_pairing_sweeps(graph: &mut EdgeList, sweeps: usize, seed: u64) {
    let edges = graph.edges_mut();
    let mut present: HashSet<u64> = edges.iter().map(Edge::key).collect();
    for sweep in 0..sweeps {
        let sweep_seed = mix64(seed ^ mix64(sweep as u64));
        for pair in 0..edges.len() / 2 {
            let e = edges[2 * pair];
            let f = edges[2 * pair + 1];
            let side = mix64(sweep_seed ^ pair as u64) & 1 == 1;
            let (g, h) = e.swap_with(&f, side);
            if g.is_self_loop() || h.is_self_loop() || g.key() == h.key() {
                continue;
            }
            if present.contains(&g.key()) || present.contains(&h.key()) {
                continue;
            }
            present.remove(&e.key());
            present.remove(&f.key());
            present.insert(g.key());
            present.insert(h.key());
            edges[2 * pair] = g;
            edges[2 * pair + 1] = h;
        }
    }
}

/// Configuration of an edge-skip expectation run.
#[derive(Clone, Debug)]
pub struct ExpectationConfig {
    /// Number of generated graphs.
    pub trials: u64,
    /// Family-wise significance; Bonferroni-split across all vertex pairs.
    pub alpha: f64,
    /// Base RNG seed (trial `i` uses `mix64(base_seed ^ i)`).
    pub base_seed: u64,
}

impl Default for ExpectationConfig {
    fn default() -> Self {
        Self {
            trials: 1_500,
            alpha: 1e-4,
            base_seed: 0xED05_EED5,
        }
    }
}

/// Machine-readable verdict of an edge-skip expectation run.
#[derive(Clone, Debug)]
pub struct ExpectationVerdict {
    /// Number of vertex pairs tested.
    pub num_pairs: usize,
    /// Graphs generated.
    pub trials: u64,
    /// Bonferroni-corrected per-pair significance (`alpha / num_pairs`).
    pub per_pair_alpha: f64,
    /// Smallest per-pair binomial p-value.
    pub min_p: f64,
    /// The vertex pair attaining `min_p`.
    pub worst_pair: (u32, u32),
    /// Observed count and expected probability at the worst pair.
    pub worst_observed: u64,
    pub worst_expected_p: f64,
    /// `max_relative_residual` of the probability matrix against the degree
    /// system — reported for context (a property of `genprob`, not of the
    /// generator under test).
    pub genprob_residual: f64,
    /// `true` when any pair rejects at the corrected level.
    pub rejected: bool,
}

impl ExpectationVerdict {
    /// Hand-rolled JSON encoding (stable field order, no serde).
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"kind\":\"edgeskip-expectation\",\"num_pairs\":{},\"trials\":{},",
                "\"per_pair_alpha\":{:e},\"min_p\":{:.6e},",
                "\"worst_pair\":[{},{}],\"worst_observed\":{},\"worst_expected_p\":{:.6},",
                "\"genprob_residual\":{:.6},\"rejected\":{}}}"
            ),
            self.num_pairs,
            self.trials,
            self.per_pair_alpha,
            self.min_p,
            self.worst_pair.0,
            self.worst_pair.1,
            self.worst_observed,
            self.worst_expected_p,
            self.genprob_residual,
            self.rejected,
        )
    }
}

impl fmt::Display for ExpectationVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "edgeskip-expectation: {} pairs x {} trials, genprob residual {:.4}",
            self.num_pairs, self.trials, self.genprob_residual
        )?;
        write!(
            f,
            "  worst pair ({}, {}): observed {}/{} vs p = {:.4}, p-value {:.4e}; verdict: {}",
            self.worst_pair.0,
            self.worst_pair.1,
            self.worst_observed,
            self.trials,
            self.worst_expected_p,
            self.min_p,
            if self.rejected {
                "REJECTED"
            } else {
                "not rejected"
            }
        )
    }
}

/// Per-pair expectation harness for the Bernoulli edge-skip generator.
///
/// Every vertex pair `(u, v)` is, by the generator's contract, included
/// independently with probability `P[class(u)][class(v)]`. Over `trials`
/// generated graphs the pair's count is Binomial(`trials`, `p`), which is
/// tested exactly.
pub struct EdgeSkipExpectationHarness {
    dist: DegreeDistribution,
    probs: genprob::ProbMatrix,
    /// `class_of[v]` = degree-class index of vertex `v`.
    class_of: Vec<usize>,
}

impl EdgeSkipExpectationHarness {
    /// Build the harness with the paper's heuristic probabilities. Keep the
    /// distribution small (tens of vertices): the harness counts every
    /// vertex pair.
    pub fn new(dist: DegreeDistribution) -> Self {
        let probs = genprob::heuristic_probabilities(&dist);
        Self::with_probabilities(dist, probs)
    }

    /// Build the harness with an explicit probability matrix.
    pub fn with_probabilities(dist: DegreeDistribution, probs: genprob::ProbMatrix) -> Self {
        let n = dist.num_vertices() as usize;
        let offsets = dist.class_offsets();
        let mut class_of = vec![0usize; n];
        for (c, &start) in offsets.iter().enumerate() {
            let end = offsets.get(c + 1).copied().unwrap_or(n as u64);
            for v in start..end {
                class_of[v as usize] = c;
            }
        }
        Self {
            dist,
            probs,
            class_of,
        }
    }

    /// Run the harness: generate `cfg.trials` graphs, count every vertex
    /// pair, and binomially test each count against its class-pair
    /// probability with Bonferroni correction.
    pub fn run(&self, cfg: &ExpectationConfig) -> ExpectationVerdict {
        self.run_against_with_metrics(cfg, &self.probs, None)
    }

    /// As [`run`](Self::run), tallying generated edges and skip jumps into
    /// `metrics` for every trial graph.
    pub fn run_with_metrics(
        &self,
        cfg: &ExpectationConfig,
        metrics: Option<&obs::Metrics>,
    ) -> ExpectationVerdict {
        self.run_against_with_metrics(cfg, &self.probs, metrics)
    }

    /// Like [`run`](Self::run), but test the observed counts against an
    /// *explicit* probability matrix instead of the generation matrix.
    /// Passing a wrong matrix here is the harness's own power check: the
    /// mismatch must be rejected.
    pub fn run_against(
        &self,
        cfg: &ExpectationConfig,
        test_probs: &genprob::ProbMatrix,
    ) -> ExpectationVerdict {
        self.run_against_with_metrics(cfg, test_probs, None)
    }

    /// [`run_against`](Self::run_against) with an optional metrics registry.
    pub fn run_against_with_metrics(
        &self,
        cfg: &ExpectationConfig,
        test_probs: &genprob::ProbMatrix,
        metrics: Option<&obs::Metrics>,
    ) -> ExpectationVerdict {
        let n = self.class_of.len();
        let num_pairs = n * (n - 1) / 2;
        assert!(num_pairs > 0, "need at least two vertices");
        // Per-trial generation is independent; count vectors merge by sum.
        let counts: Vec<u64> = (0..cfg.trials)
            .into_par_iter()
            .map(|trial| {
                let g = edgeskip::try_generate_with_metrics(
                    &self.probs,
                    &self.dist,
                    mix64(cfg.base_seed ^ trial),
                    metrics,
                )
                .expect("harness probabilities and distribution are consistent");
                let mut local = vec![0u64; num_pairs];
                for e in g.edges() {
                    local[pair_index(n, e.u() as usize, e.v() as usize)] += 1;
                }
                local
            })
            .reduce(
                || vec![0u64; num_pairs],
                |mut a, b| {
                    for (x, y) in a.iter_mut().zip(b) {
                        *x += y;
                    }
                    a
                },
            );
        let per_pair_alpha = cfg.alpha / num_pairs as f64;
        let mut min_p = f64::INFINITY;
        let mut worst_pair = (0u32, 1u32);
        let mut worst_observed = 0u64;
        let mut worst_expected_p = 0.0f64;
        let mut rejected = false;
        let mut idx = 0usize;
        for u in 0..n {
            for v in (u + 1)..n {
                let p = test_probs
                    .get(self.class_of[u], self.class_of[v])
                    .clamp(0.0, 1.0);
                let outcome = binomial_two_sided(counts[idx], cfg.trials, p);
                if outcome.p_value < min_p {
                    min_p = outcome.p_value;
                    worst_pair = (u as u32, v as u32);
                    worst_observed = counts[idx];
                    worst_expected_p = p;
                }
                rejected |= outcome.rejected_at(per_pair_alpha);
                idx += 1;
            }
        }
        ExpectationVerdict {
            num_pairs,
            trials: cfg.trials,
            per_pair_alpha,
            min_p,
            worst_pair,
            worst_observed,
            worst_expected_p,
            genprob_residual: genprob::max_relative_residual(test_probs, &self.dist),
            rejected,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> UniformityConfig {
        UniformityConfig {
            sweeps: 25,
            trials: 600,
            replicates: 2,
            alpha: 1e-6,
            base_seed: 0xABCD_1234,
        }
    }

    #[test]
    fn serial_chain_not_rejected_on_small_sequence() {
        let h = SwapUniformityHarness::new(&[2, 2, 2, 1, 1]).unwrap();
        let v = h.run(SamplerKind::SwapSerial, &quick_cfg()).unwrap();
        assert!(!v.rejected, "{v}");
        assert_eq!(
            v.replicates[0].counts.iter().sum::<u64>(),
            quick_cfg().trials
        );
    }

    #[test]
    fn parallel_and_serial_chains_agree_exactly() {
        let h = SwapUniformityHarness::new(&[2, 2, 2, 1, 1]).unwrap();
        let cfg = quick_cfg();
        let a = h.run(SamplerKind::SwapSerial, &cfg).unwrap();
        let b = h.run(SamplerKind::SwapParallel, &cfg).unwrap();
        // The deterministic claim protocol makes the two paths identical
        // sample-for-sample, hence histogram-for-histogram.
        for (ra, rb) in a.replicates.iter().zip(&b.replicates) {
            assert_eq!(ra.counts, rb.counts);
        }
    }

    #[test]
    fn biased_control_is_rejected() {
        let h = SwapUniformityHarness::new(&[2, 2, 2, 1, 1]).unwrap();
        let v = h
            .run(SamplerKind::BiasedNoPermutation, &quick_cfg())
            .unwrap();
        assert!(v.rejected, "biased sampler must be rejected: {v}");
    }

    #[test]
    fn harness_rejects_bad_inputs() {
        assert_eq!(
            SwapUniformityHarness::new(&[1; 9]).unwrap_err(),
            HarnessError::TooManyVertices(9)
        );
        assert_eq!(
            SwapUniformityHarness::new(&[3, 1]).unwrap_err(),
            HarnessError::NotGraphical
        );
    }

    #[test]
    fn verdict_json_is_well_formed() {
        let h = SwapUniformityHarness::new(&[1, 1, 1, 1]).unwrap();
        let mut cfg = quick_cfg();
        cfg.trials = 300;
        let v = h.run(SamplerKind::SwapSerial, &cfg).unwrap();
        let j = v.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"kind\":\"uniformity\""));
        assert!(j.contains("\"support_size\":3"));
        assert!(j.contains("\"rejected\":"));
    }

    #[test]
    fn edgeskip_expectation_not_rejected() {
        let dist = DegreeDistribution::from_pairs(vec![(2, 8), (3, 4)]).unwrap();
        let h = EdgeSkipExpectationHarness::new(dist);
        let cfg = ExpectationConfig {
            trials: 800,
            alpha: 1e-6,
            base_seed: 0xFEED_BEEF,
        };
        let v = h.run(&cfg);
        assert!(!v.rejected, "{v}");
        assert!(v.genprob_residual < 0.25);
        let j = v.to_json();
        assert!(j.contains("\"kind\":\"edgeskip-expectation\""));
    }

    #[test]
    fn edgeskip_expectation_detects_wrong_probabilities() {
        // Generate honestly, but test against a matrix that claims
        // "p = 0.9 everywhere": the mismatch must reject.
        let dist = DegreeDistribution::from_pairs(vec![(2, 8), (3, 4)]).unwrap();
        let h = EdgeSkipExpectationHarness::new(dist);
        let mut wrong = genprob::heuristic_probabilities(&h.dist);
        for a in 0..wrong.num_classes() {
            for b in a..wrong.num_classes() {
                wrong.set(a, b, 0.9);
            }
        }
        let cfg = ExpectationConfig {
            trials: 400,
            alpha: 1e-6,
            base_seed: 0xFEED_BEEF,
        };
        assert!(h.run_against(&cfg, &wrong).rejected);
    }
}
