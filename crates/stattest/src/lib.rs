//! Statistical verification subsystem for the null-model generators.
//!
//! The paper's central correctness claim — the parallel double-edge-swap
//! chain samples **uniformly** from the simple graphs realizing a degree
//! sequence — is only checkable against ground truth when the ground truth
//! is known. This crate makes it known for small instances and turns the
//! claim into automated hypothesis tests:
//!
//! * [`enumerate`] — exact enumeration of every labeled simple graph
//!   realizing a degree sequence on `n ≤ 8` vertices, encoded as `u32`
//!   bitmasks over the lexicographic vertex-pair order;
//! * [`stats`] — a dependency-free hypothesis-test kit: Pearson chi-square
//!   (p-values via the regularized incomplete gamma function), two-sample
//!   Kolmogorov–Smirnov, exact/approximate two-sided binomial tests, and
//!   Wilson score intervals;
//! * [`harness`] — end-to-end harnesses: [`SwapUniformityHarness`] drives
//!   the swap MCMC (serial, parallel, and an intentionally-biased control)
//!   against the enumerated support with Bonferroni-corrected chi-square
//!   verdicts, and [`EdgeSkipExpectationHarness`] binomially verifies the
//!   Bernoulli edge-skip generator's per-pair edge probabilities.
//!
//! Verdicts are machine readable ([`UniformityVerdict::to_json`],
//! [`ExpectationVerdict::to_json`]) and drive the `verify` CLI subcommand
//! and the tier-1 statistical test suite (`tests/uniformity_statistical.rs`).
//!
//! # Example
//!
//! ```
//! use stattest::{SamplerKind, SwapUniformityHarness, UniformityConfig};
//!
//! // Every 2-regular graph on 5 vertices is a 5-cycle; there are 12.
//! let harness = SwapUniformityHarness::new(&[2, 2, 2, 2, 2]).unwrap();
//! assert_eq!(harness.support().support_size(), 12);
//!
//! let cfg = UniformityConfig {
//!     sweeps: 20,
//!     trials: 600,
//!     replicates: 1,
//!     alpha: 1e-6,
//!     base_seed: 7,
//! };
//! let verdict = harness.run(SamplerKind::SwapSerial, &cfg).unwrap();
//! assert!(!verdict.rejected); // the real chain is uniform
//! ```

pub mod enumerate;
pub mod harness;
pub mod stats;

pub use enumerate::{edge_list_mask, pair_index, Realizations, MAX_VERTICES};
pub use harness::{
    EdgeSkipExpectationHarness, ExpectationConfig, ExpectationVerdict, HarnessError,
    ReplicateResult, SamplerKind, SwapUniformityHarness, UniformityConfig, UniformityVerdict,
};
pub use stats::{
    binomial_two_sided, chi_square_pooled, chi_square_sf, chi_square_test, chi_square_uniform,
    gamma_p, gamma_q, kolmogorov_sf, ks_two_sample, ln_binomial_pmf, ln_gamma, normal_two_sided,
    wilson_interval, TestOutcome,
};
