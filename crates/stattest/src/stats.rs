//! A small, dependency-free hypothesis-test kit.
//!
//! Everything here is classical: Pearson's chi-square with the p-value
//! computed from the regularized upper incomplete gamma function, the
//! two-sample Kolmogorov–Smirnov test with the asymptotic Kolmogorov
//! distribution, the exact (and normal-approximate) two-sided binomial
//! test, and Wilson score intervals. Implementations follow the standard
//! series/continued-fraction evaluations (Numerical Recipes §6.2, §14.3).

/// Outcome of a single hypothesis test.
#[derive(Clone, Copy, Debug)]
pub struct TestOutcome {
    /// The test statistic (chi-square value, KS distance, ...).
    pub statistic: f64,
    /// Degrees of freedom where meaningful (0 otherwise).
    pub dof: usize,
    /// Two-sided p-value under the null hypothesis.
    pub p_value: f64,
}

impl TestOutcome {
    /// `true` when the null hypothesis is rejected at significance `alpha`.
    pub fn rejected_at(&self, alpha: f64) -> bool {
        self.p_value < alpha
    }
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
/// Accurate to ~15 significant digits for positive arguments.
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps small arguments accurate.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = 0.999_999_999_999_809_9;
    for (i, &c) in COEF.iter().enumerate() {
        a += c / (x + i as f64 + 1.0);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p domain: a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_contfrac(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_q domain: a > 0, x >= 0");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_contfrac(a, x)
    }
}

/// Series representation of `P(a, x)`; converges fast for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..500 {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Lentz continued fraction for `Q(a, x)`; converges fast for `x ≥ a + 1`.
fn gamma_q_contfrac(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Survival function of the chi-square distribution: `P(X ≥ statistic)`
/// with `dof` degrees of freedom.
pub fn chi_square_sf(statistic: f64, dof: usize) -> f64 {
    if dof == 0 {
        return 1.0;
    }
    if !statistic.is_finite() {
        return 0.0;
    }
    gamma_q(dof as f64 / 2.0, statistic.max(0.0) / 2.0)
}

/// Pearson chi-square goodness-of-fit test of observed counts against
/// expected counts. `dof = cells − 1 − constrained` where `constrained`
/// extra degrees can be removed for fitted parameters (pass 0 normally).
///
/// Cells with `expected == 0` but `observed > 0` force the statistic to
/// infinity (p = 0); cells where both are zero are skipped.
pub fn chi_square_test(observed: &[u64], expected: &[f64], constrained: usize) -> TestOutcome {
    assert_eq!(observed.len(), expected.len(), "cell count mismatch");
    let mut statistic = 0.0f64;
    let mut cells = 0usize;
    for (&o, &e) in observed.iter().zip(expected) {
        if e <= 0.0 {
            if o > 0 {
                statistic = f64::INFINITY;
                cells += 1;
            }
            continue;
        }
        let d = o as f64 - e;
        statistic += d * d / e;
        cells += 1;
    }
    let dof = cells.saturating_sub(1 + constrained);
    TestOutcome {
        statistic,
        dof,
        p_value: if dof == 0 {
            1.0
        } else {
            chi_square_sf(statistic, dof)
        },
    }
}

/// Chi-square test against the uniform distribution over `observed.len()`
/// cells.
pub fn chi_square_uniform(observed: &[u64]) -> TestOutcome {
    let total: u64 = observed.iter().sum();
    let expected = vec![total as f64 / observed.len() as f64; observed.len()];
    chi_square_test(observed, &expected, 0)
}

/// Chi-square with *tail pooling*: consecutive cells are merged until each
/// pooled cell's expected count reaches `min_expected` (the classical
/// validity rule of thumb is 5). Returns `None` when fewer than two pooled
/// cells remain.
pub fn chi_square_pooled(
    observed: &[u64],
    expected: &[f64],
    min_expected: f64,
) -> Option<TestOutcome> {
    assert_eq!(observed.len(), expected.len());
    let mut pooled_o = Vec::new();
    let mut pooled_e = Vec::new();
    let mut acc_o = 0u64;
    let mut acc_e = 0.0f64;
    for (&o, &e) in observed.iter().zip(expected) {
        acc_o += o;
        acc_e += e;
        if acc_e >= min_expected {
            pooled_o.push(acc_o);
            pooled_e.push(acc_e);
            acc_o = 0;
            acc_e = 0.0;
        }
    }
    if acc_o > 0 || acc_e > 0.0 {
        // Fold the remainder into the last pooled cell, or keep it if
        // nothing was pooled yet.
        if let (Some(lo), Some(le)) = (pooled_o.last_mut(), pooled_e.last_mut()) {
            *lo += acc_o;
            *le += acc_e;
        } else {
            pooled_o.push(acc_o);
            pooled_e.push(acc_e);
        }
    }
    if pooled_o.len() < 2 {
        return None;
    }
    Some(chi_square_test(&pooled_o, &pooled_e, 0))
}

/// Asymptotic survival function of the Kolmogorov distribution,
/// `Q_KS(λ) = 2 Σ_{j≥1} (−1)^{j−1} e^{−2 j² λ²}`.
pub fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda <= 0.0 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = (-2.0 * (j as f64) * (j as f64) * lambda * lambda).exp();
        sum += sign * term;
        sign = -sign;
        if term < 1e-12 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// Two-sample Kolmogorov–Smirnov test. Inputs need not be sorted.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> TestOutcome {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    let mut xa = a.to_vec();
    let mut xb = b.to_vec();
    xa.sort_unstable_by(f64::total_cmp);
    xb.sort_unstable_by(f64::total_cmp);
    let (na, nb) = (xa.len(), xb.len());
    let (mut ia, mut ib) = (0usize, 0usize);
    let mut d = 0.0f64;
    while ia < na && ib < nb {
        let va = xa[ia];
        let vb = xb[ib];
        let x = va.min(vb);
        while ia < na && xa[ia] <= x {
            ia += 1;
        }
        while ib < nb && xb[ib] <= x {
            ib += 1;
        }
        let fa = ia as f64 / na as f64;
        let fb = ib as f64 / nb as f64;
        d = d.max((fa - fb).abs());
    }
    let ne = (na as f64 * nb as f64) / (na as f64 + nb as f64);
    let sqrt_ne = ne.sqrt();
    let lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
    TestOutcome {
        statistic: d,
        dof: 0,
        p_value: kolmogorov_sf(lambda),
    }
}

/// Natural log of the binomial probability mass `P(X = k)` for
/// `X ~ Binomial(n, p)`.
pub fn ln_binomial_pmf(k: u64, n: u64, p: f64) -> f64 {
    assert!(k <= n && (0.0..=1.0).contains(&p));
    if p == 0.0 {
        return if k == 0 { 0.0 } else { f64::NEG_INFINITY };
    }
    if p == 1.0 {
        return if k == n { 0.0 } else { f64::NEG_INFINITY };
    }
    let (nf, kf) = (n as f64, k as f64);
    ln_gamma(nf + 1.0) - ln_gamma(kf + 1.0) - ln_gamma(nf - kf + 1.0)
        + kf * p.ln()
        + (nf - kf) * (1.0 - p).ln()
}

/// Exact two-sided binomial test (method of small p-values): the p-value is
/// the total probability of all outcomes no more likely than the observed
/// one. Used for `n ≤ 10_000`; larger `n` falls back to the normal
/// approximation with continuity correction.
pub fn binomial_two_sided(k: u64, n: u64, p: f64) -> TestOutcome {
    assert!(k <= n, "k must be ≤ n");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mean = n as f64 * p;
    let var = mean * (1.0 - p);
    let statistic = if var > 0.0 {
        (k as f64 - mean) / var.sqrt()
    } else {
        0.0
    };
    let p_value = if n <= 10_000 {
        let obs = ln_binomial_pmf(k, n, p);
        // Tolerance guards against ties lost to floating-point noise.
        let mut total = 0.0f64;
        for j in 0..=n {
            let lj = ln_binomial_pmf(j, n, p);
            if lj <= obs + 1e-9 {
                total += lj.exp();
            }
        }
        total.min(1.0)
    } else {
        // Normal approximation, continuity corrected.
        let z = ((k as f64 - mean).abs() - 0.5).max(0.0) / var.sqrt();
        normal_two_sided(z)
    };
    TestOutcome {
        statistic,
        dof: 0,
        p_value,
    }
}

/// Two-sided tail mass of the standard normal beyond `|z|`, via the
/// complementary error function (expressed through `gamma_q(1/2, z²/2)`).
pub fn normal_two_sided(z: f64) -> f64 {
    let z = z.abs();
    if z == 0.0 {
        return 1.0;
    }
    gamma_q(0.5, z * z / 2.0)
}

/// Wilson score confidence interval for a binomial proportion with
/// `successes` out of `trials` at normal quantile `z` (1.96 ≈ 95%).
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(trials > 0, "Wilson interval needs at least one trial");
    let n = trials as f64;
    let phat = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = phat + z2 / (2.0 * n);
    let half = z * (phat * (1.0 - phat) / n + z2 / (4.0 * n * n)).sqrt();
    (
        ((center - half) / denom).max(0.0),
        ((center + half) / denom).min(1.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-12);
        assert!((ln_gamma(2.0)).abs() < 1e-12);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn chi_square_critical_values() {
        // Classical 5% critical values.
        assert!((chi_square_sf(3.841_458_8, 1) - 0.05).abs() < 1e-6);
        assert!((chi_square_sf(5.991_464_5, 2) - 0.05).abs() < 1e-6);
        assert!((chi_square_sf(16.918_977_6, 9) - 0.05).abs() < 1e-6);
        // Extreme statistic → tiny p.
        assert!(chi_square_sf(100.0, 1) < 1e-20);
        assert!(chi_square_sf(0.0, 5) == 1.0);
    }

    #[test]
    fn gamma_p_q_complementary() {
        for &(a, x) in &[(0.5, 0.3), (2.0, 1.0), (5.0, 9.0), (10.0, 3.0)] {
            let s = gamma_p(a, x) + gamma_q(a, x);
            assert!((s - 1.0).abs() < 1e-12, "P+Q = {s} at ({a},{x})");
        }
    }

    #[test]
    fn chi_square_test_balanced_counts_high_p() {
        let obs = [100u64, 101, 99, 100];
        let t = chi_square_uniform(&obs);
        assert_eq!(t.dof, 3);
        assert!(t.p_value > 0.9, "p = {}", t.p_value);
    }

    #[test]
    fn chi_square_test_skewed_counts_low_p() {
        let obs = [400u64, 0, 0, 0];
        let t = chi_square_uniform(&obs);
        assert!(t.p_value < 1e-100, "p = {}", t.p_value);
    }

    #[test]
    fn chi_square_zero_expected_nonzero_observed_rejects() {
        let t = chi_square_test(&[10, 5], &[10.0, 0.0], 0);
        assert_eq!(t.p_value, 0.0);
    }

    #[test]
    fn chi_square_pooling_merges_small_cells() {
        let observed = [50u64, 30, 2, 1, 0, 1];
        let expected = [48.0, 31.0, 2.0, 1.0, 1.0, 1.0];
        let t = chi_square_pooled(&observed, &expected, 5.0).unwrap();
        // 50|30|pooled-rest → 3 cells, 2 dof.
        assert_eq!(t.dof, 2);
        assert!(t.p_value > 0.5, "p = {}", t.p_value);
        // Degenerate: everything pools into one cell.
        assert!(chi_square_pooled(&[1, 1], &[1.0, 1.0], 100.0).is_none());
    }

    #[test]
    fn ks_identical_samples_high_p() {
        let a: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let t = ks_two_sample(&a, &a);
        assert_eq!(t.statistic, 0.0);
        assert!((t.p_value - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ks_disjoint_samples_low_p() {
        let a: Vec<f64> = (0..200).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..200).map(|i| 1000.0 + i as f64).collect();
        let t = ks_two_sample(&a, &b);
        assert!((t.statistic - 1.0).abs() < 1e-12);
        assert!(t.p_value < 1e-12);
    }

    #[test]
    fn binomial_exact_symmetric_cases() {
        // Central observation: p-value 1.
        let t = binomial_two_sided(5, 10, 0.5);
        assert!((t.p_value - 1.0).abs() < 1e-9, "p = {}", t.p_value);
        // All failures at p = 0.5: both extreme tails, 2/2^10.
        let t = binomial_two_sided(0, 10, 0.5);
        assert!((t.p_value - 2.0 / 1024.0).abs() < 1e-9, "p = {}", t.p_value);
    }

    #[test]
    fn binomial_normal_approx_matches_exact_shape() {
        // Same (k, n, p) through both paths: exact for n = 10 000 and the
        // approximation for n just over the cutoff must broadly agree.
        let exact = binomial_two_sided(5100, 10_000, 0.5);
        let n = 10_001u64;
        let approx = binomial_two_sided(5101, n, 0.5);
        assert!(exact.p_value < 0.06 && exact.p_value > 0.02);
        assert!((exact.p_value - approx.p_value).abs() < 0.01);
    }

    #[test]
    fn binomial_degenerate_p() {
        assert!((binomial_two_sided(0, 50, 0.0).p_value - 1.0).abs() < 1e-12);
        assert!((binomial_two_sided(50, 50, 1.0).p_value - 1.0).abs() < 1e-12);
        assert_eq!(binomial_two_sided(1, 50, 0.0).p_value, 0.0);
    }

    #[test]
    fn normal_two_sided_known() {
        assert!((normal_two_sided(1.959_963_985) - 0.05).abs() < 1e-6);
        assert!((normal_two_sided(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wilson_interval_contains_phat() {
        let (lo, hi) = wilson_interval(50, 100, 1.96);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!((lo - 0.404).abs() < 0.005 && (hi - 0.596).abs() < 0.005);
        let (lo0, _) = wilson_interval(0, 20, 1.96);
        assert_eq!(lo0, 0.0);
    }
}
