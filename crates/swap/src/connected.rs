//! Connectivity-preserving double-edge swaps (Viger & Latapy style).
//!
//! Many null-model studies require the sampled graphs to stay *connected*
//! (e.g. when the observed network is connected and the statistic of
//! interest is distance-based). A double-edge swap can disconnect a graph
//! — swapping two opposite edges of a cycle splits it in two — so the
//! connected variant speculatively applies a full parallel swap sweep,
//! checks connectivity, and rolls the sweep back (retrying with fresh
//! randomness) when it broke the graph. Viger & Latapy (2005) showed such
//! speculative batching is far cheaper than per-swap connectivity checks,
//! and that retries succeed quickly on real-world-like graphs.
//!
//! Connectivity is evaluated over the non-isolated vertices: degree-0
//! vertices can never participate in a swap and are ignored.

use crate::{swap_edges_with_workspace, SwapConfig, SwapStats, SwapWorkspace};
use graphcore::analysis::connected_components;
use graphcore::EdgeList;
use parutil::rng::mix64;

/// Configuration for connectivity-preserving swapping.
#[derive(Clone, Debug)]
pub struct ConnectedSwapConfig {
    /// Full permute-and-swap sweeps to perform (each sweep is checked).
    pub iterations: usize,
    /// RNG seed.
    pub seed: u64,
    /// How many times a sweep that disconnected the graph is rolled back
    /// and retried with fresh randomness before giving up.
    pub max_retries_per_iteration: usize,
}

impl ConnectedSwapConfig {
    /// `iterations` sweeps with the default retry budget (16).
    pub fn new(iterations: usize, seed: u64) -> Self {
        Self {
            iterations,
            seed,
            max_retries_per_iteration: 16,
        }
    }
}

/// Errors from [`swap_edges_connected`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConnectedSwapError {
    /// The input graph was not connected to begin with.
    InputDisconnected,
    /// An iteration exhausted its retry budget (the graph is returned in
    /// its last *connected* state; `completed` sweeps succeeded).
    RetriesExhausted {
        /// Sweeps completed before giving up.
        completed: usize,
    },
}

impl std::fmt::Display for ConnectedSwapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InputDisconnected => write!(f, "input graph is not connected"),
            Self::RetriesExhausted { completed } => {
                write!(f, "retry budget exhausted after {completed} sweeps")
            }
        }
    }
}

impl std::error::Error for ConnectedSwapError {}

/// `true` when all non-isolated vertices lie in one component.
pub fn is_connected_ignoring_isolated(graph: &EdgeList) -> bool {
    if graph.is_empty() {
        return true;
    }
    let (labels, _) = connected_components(graph);
    let mut seen: Option<u32> = None;
    let seq = graph.degree_sequence();
    for (v, &d) in seq.degrees().iter().enumerate() {
        if d == 0 {
            continue;
        }
        match seen {
            None => seen = Some(labels[v]),
            Some(l) if l != labels[v] => return false,
            _ => {}
        }
    }
    true
}

/// Uniformly mix a **connected** simple graph while preserving both the
/// degree sequence and connectivity. On success returns the per-sweep
/// statistics of the accepted (connected) sweeps.
pub fn swap_edges_connected(
    graph: &mut EdgeList,
    cfg: &ConnectedSwapConfig,
) -> Result<SwapStats, ConnectedSwapError> {
    swap_edges_connected_with_workspace(graph, cfg, &mut SwapWorkspace::new())
}

/// As [`swap_edges_connected`], reusing caller-owned swap buffers across
/// the sweeps and their rollback retries.
pub fn swap_edges_connected_with_workspace(
    graph: &mut EdgeList,
    cfg: &ConnectedSwapConfig,
    ws: &mut SwapWorkspace,
) -> Result<SwapStats, ConnectedSwapError> {
    if !is_connected_ignoring_isolated(graph) {
        return Err(ConnectedSwapError::InputDisconnected);
    }
    let mut stats = SwapStats::default();
    let mut snapshot: Vec<graphcore::Edge> = Vec::new();
    for iter in 0..cfg.iterations {
        snapshot.clear();
        snapshot.extend_from_slice(graph.edges());
        let mut accepted = false;
        for attempt in 0..=cfg.max_retries_per_iteration {
            let salt = mix64(cfg.seed ^ ((iter as u64) << 20) ^ attempt as u64);
            let sweep = swap_edges_with_workspace(graph, &SwapConfig::new(1, salt), ws);
            if is_connected_ignoring_isolated(graph) {
                stats.iterations.extend(sweep.iterations.iter().copied());
                accepted = true;
                break;
            }
            // Roll back and retry with different randomness.
            graph.edges_mut().copy_from_slice(&snapshot);
        }
        if !accepted {
            return Err(ConnectedSwapError::RetriesExhausted { completed: iter });
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swap_edges;
    use graphcore::DegreeDistribution;

    fn ring(n: u32) -> EdgeList {
        EdgeList::from_pairs((0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn connectivity_helper() {
        assert!(is_connected_ignoring_isolated(&ring(10)));
        let two_rings = EdgeList::from_pairs([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        assert!(!is_connected_ignoring_isolated(&two_rings));
        // Isolated vertices do not count.
        let with_isolated = EdgeList::from_edges(
            5,
            vec![graphcore::Edge::new(0, 1), graphcore::Edge::new(1, 2)],
        );
        assert!(is_connected_ignoring_isolated(&with_isolated));
        assert!(is_connected_ignoring_isolated(&EdgeList::new(0)));
    }

    #[test]
    fn rejects_disconnected_input() {
        let mut g = EdgeList::from_pairs([(0, 1), (2, 3)]);
        assert_eq!(
            swap_edges_connected(&mut g, &ConnectedSwapConfig::new(1, 1)).unwrap_err(),
            ConnectedSwapError::InputDisconnected
        );
    }

    #[test]
    fn ring_stays_connected_and_mixed() {
        // A plain cycle is the classic fragile case: unconstrained swaps
        // split it into two cycles with probability ~1/2 per accepted swap.
        let mut g = ring(60);
        let before = g.degree_sequence();
        let stats = swap_edges_connected(&mut g, &ConnectedSwapConfig::new(8, 3)).unwrap();
        assert!(is_connected_ignoring_isolated(&g));
        assert_eq!(g.degree_sequence(), before);
        assert!(g.is_simple());
        assert!(stats.total_successful() > 0, "no swaps accepted");
        assert_ne!(g, ring(60), "graph did not change");
    }

    #[test]
    fn skewed_graph_stays_connected() {
        // A ring with a hub chord to every 5th vertex: connected by
        // construction, with degree skew.
        let mut pairs: Vec<(u32, u32)> = (0..50).map(|i| (i, (i + 1) % 50)).collect();
        pairs.extend((0..50).step_by(5).map(|i| (50, i)));
        let mut g = EdgeList::from_pairs(pairs);
        assert!(is_connected_ignoring_isolated(&g));
        let dist = g.degree_distribution();
        swap_edges_connected(&mut g, &ConnectedSwapConfig::new(6, 9)).unwrap();
        assert!(is_connected_ignoring_isolated(&g));
        assert_eq!(g.degree_distribution(), dist);
        let _ = DegreeDistribution::from_pairs(vec![(2, 2)]); // keep import used
    }

    #[test]
    fn unconstrained_swaps_do_disconnect_rings() {
        // Sanity check that the constraint is actually doing something: on
        // many seeds, plain sweeps disconnect a cycle.
        let mut disconnected = 0;
        for seed in 0..10 {
            let mut g = ring(40);
            swap_edges(&mut g, &SwapConfig::new(3, seed));
            if !is_connected_ignoring_isolated(&g) {
                disconnected += 1;
            }
        }
        assert!(
            disconnected > 0,
            "cycles never disconnected — test too weak"
        );
    }

    #[test]
    fn deterministic() {
        let mut a = ring(50);
        let mut b = ring(50);
        swap_edges_connected(&mut a, &ConnectedSwapConfig::new(4, 11)).unwrap();
        swap_edges_connected(&mut b, &ConnectedSwapConfig::new(4, 11)).unwrap();
        assert_eq!(a, b);
    }
}
