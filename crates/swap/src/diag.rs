//! Online convergence diagnostics for mixing runs.
//!
//! The `--until-mixed` threshold rule stops when the *ever-swapped
//! fraction* crosses a cutoff — a coverage proxy, not a convergence
//! criterion: a chain in which nearly every edge has been rewired once can
//! still be far from uniform over the realization space. Following the
//! sampling-convergence discussion in Dutta–Fosdick–Clauset, this module
//! assesses mixing the way MCMC practice does: via the autocorrelation of
//! cheap scalar network observables along the chain.
//!
//! # Observables
//!
//! Each sweep appends one sample to four scalar series (recorded in
//! [`IterationStats`] when [`crate::SwapConfig::track_diagnostics`] is on):
//!
//! * **degree-product sum** `Σ_{(u,v) ∈ E} d(u)·d(v)` — the unnormalized
//!   numerator of degree assortativity. Degrees are swap-invariant, so a
//!   committed swap moves the sum by an O(1) delta over the four edges it
//!   touches.
//! * **wedge sketch** `Σ_v W(v)²` with `W(v) = Σ_{u ∈ N(v)} s(u)` over a
//!   seed-derived ±1 vertex hash `s` — a linear sketch of the two-hop
//!   (wedge/triangle) structure. A committed swap adjusts four `W` entries
//!   by ±1 hash values: O(changes) per swap, one O(n) reduction per sweep.
//! * **ever-swapped fraction** — the legacy trajectory, kept as one series
//!   among several (it saturates, at which point it goes uninformative and
//!   is excluded).
//! * **accepted swaps per sweep** — the chain's acceptance trajectory.
//!
//! Both incremental observables use *wrapping* integer arithmetic and
//! commutative atomic accumulation, so they are exact (mod 2⁶⁴) functions
//! of the current edge multiset — independent of scheduling, pool size,
//! shard count, and resume cuts, and recomputable from a checkpoint's slots.
//!
//! # Stopping decision
//!
//! [`StopRule::Converged`](crate::StopRule::Converged)`{ min_ess, window }`
//! stops the run at the first sweep where, over the trailing `window`
//! samples of every series, the Geyer initial-positive-sequence estimator
//! yields an effective sample size of at least `min_ess` for **every
//! informative** series (constant series carry no signal and are excluded;
//! a window in which *all* series are constant never stops — a frozen chain
//! is not a mixed chain). The decision is a pure function of the per-sweep
//! stats series, so an interrupted-and-resumed run reproduces it exactly.

use crate::stats::IterationStats;
use crate::workspace::Slot;
use graphcore::Edge;
use parutil::rng::mix64;
use std::sync::atomic::{AtomicI64, Ordering};

/// Salt of the ±1 vertex hash behind the wedge sketch: `s(v) = ±1` from
/// `mix64(seed ^ WEDGE_SALT ^ v)`. Seed-derived, so a resumed run (same
/// seed) sketches with the same hash.
const WEDGE_SALT: u64 = 0x57ED_6E5A_17C8_B3D1;

/// The names of the observable series, in the order
/// [`observable_series`] returns them.
pub const SERIES_NAMES: [&str; 4] = [
    "deg_product_sum",
    "wedge_sketch",
    "ever_swapped_fraction",
    "successful_swaps",
];

/// Extract the four scalar observable series from per-sweep stats.
fn observable_series(window: &[IterationStats]) -> [Vec<f64>; 4] {
    [
        window.iter().map(|it| it.deg_product_sum).collect(),
        window.iter().map(|it| it.wedge_sketch).collect(),
        window.iter().map(|it| it.ever_swapped_fraction).collect(),
        window.iter().map(|it| it.successful_swaps as f64).collect(),
    ]
}

/// Effective sample size of a scalar series under the Geyer
/// initial-positive-sequence estimator.
///
/// Autocovariances `γ_k` are summed in adjacent pairs
/// `Γ_t = γ_{2t} + γ_{2t+1}`; the asymptotic variance accumulates
/// `-γ_0 + 2·Σ Γ_t` over the initial run of positive `Γ_t` (the longest
/// prefix that is provably nonnegative for a reversible chain), and
/// `ESS = n·γ_0 / σ²`, clamped to `[0, n]`. Returns `None` for a constant
/// series (`γ_0 = 0`): zero variance means the observable carries no
/// information about mixing over this window.
pub fn geyer_ess(series: &[f64]) -> Option<f64> {
    let n = series.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let mean = series.iter().sum::<f64>() / nf;
    let gamma = |k: usize| -> f64 {
        series[..n - k]
            .iter()
            .zip(&series[k..])
            .map(|(a, b)| (a - mean) * (b - mean))
            .sum::<f64>()
            / nf
    };
    let g0 = gamma(0);
    // The finiteness test also screens out NaN: a poisoned series is
    // uninformative, not converged.
    if !g0.is_finite() || g0 <= 0.0 {
        return None;
    }
    let mut sigma2 = -g0;
    let mut t = 0usize;
    while 2 * t + 1 < n {
        let big_gamma = gamma(2 * t) + gamma(2 * t + 1);
        if big_gamma <= 0.0 {
            break;
        }
        sigma2 += 2.0 * big_gamma;
        t += 1;
    }
    if sigma2 <= 0.0 {
        // Degenerate (can only happen via rounding): treat as uncorrelated.
        return Some(nf);
    }
    Some((nf * g0 / sigma2).clamp(0.0, nf))
}

/// The `StopRule::Converged` decision over the full per-sweep stats series
/// (prior segments included): `true` once the trailing `window` sweeps
/// exist, every informative observable series reaches `min_ess`, and — for
/// non-simple input — the last sweep reports zero violations.
///
/// A pure function of `(iterations, min_ess, window, needs_simplify)`, so
/// interrupt → resume reproduces the identical stopping decision.
pub(crate) fn converged(
    iterations: &[IterationStats],
    min_ess: u32,
    window: u32,
    needs_simplify: bool,
) -> bool {
    let w = window as usize;
    if iterations.len() < w {
        return false;
    }
    if needs_simplify {
        let last = &iterations[iterations.len() - 1];
        if last.self_loops > 0 || last.multi_edges > 0 {
            return false;
        }
    }
    let tail = &iterations[iterations.len() - w..];
    let mut informative = 0usize;
    for series in observable_series(tail) {
        if let Some(ess) = geyer_ess(&series) {
            if ess < f64::from(min_ess) {
                return false;
            }
            informative += 1;
        }
    }
    // All-constant window: a frozen chain is not a mixed chain.
    informative > 0
}

/// Incremental accumulators behind the two structural observables,
/// maintained inside the sweep loop when
/// [`crate::SwapConfig::track_diagnostics`] is on.
///
/// Built once per `run_until` invocation from the current slots (so a
/// resumed segment — and a grow-and-retry replay — reconstructs the exact
/// accumulator values: both observables are pure functions, mod 2⁶⁴, of
/// the current edge multiset). Updates are commutative wrapping adds on
/// atomics, so the per-sweep readouts are deterministic on any pool size.
pub(crate) struct DiagAccumulators {
    /// Swap-invariant vertex degrees of the run's graph.
    degrees: Vec<i64>,
    /// Seed-derived ±1 vertex hash.
    sign: Vec<i64>,
    /// `W(v) = Σ_{u ∈ N(v)} s(u)` over the current edge multiset.
    wedge: Vec<AtomicI64>,
    /// `Σ_{(u,v) ∈ E} d(u)·d(v)` over the current edge multiset.
    deg_product: AtomicI64,
}

impl DiagAccumulators {
    pub(crate) fn new(slots: &[Slot], num_vertices: usize, seed: u64) -> Self {
        let mut degrees = vec![0i64; num_vertices];
        for s in slots {
            degrees[s.edge.u() as usize] += 1;
            degrees[s.edge.v() as usize] += 1;
        }
        let sign: Vec<i64> = (0..num_vertices as u64)
            .map(|v| {
                if mix64(seed ^ WEDGE_SALT ^ v) & 1 == 0 {
                    1
                } else {
                    -1
                }
            })
            .collect();
        let wedge: Vec<AtomicI64> = (0..num_vertices).map(|_| AtomicI64::new(0)).collect();
        let mut deg_product = 0i64;
        for s in slots {
            let (u, v) = (s.edge.u() as usize, s.edge.v() as usize);
            wedge[u].fetch_add(sign[v], Ordering::Relaxed);
            wedge[v].fetch_add(sign[u], Ordering::Relaxed);
            deg_product = deg_product.wrapping_add(degrees[u].wrapping_mul(degrees[v]));
        }
        Self {
            degrees,
            sign,
            wedge,
            deg_product: AtomicI64::new(deg_product),
        }
    }

    #[inline]
    fn product_of(&self, e: &Edge) -> i64 {
        self.degrees[e.u() as usize].wrapping_mul(self.degrees[e.v() as usize])
    }

    #[inline]
    fn wedge_apply(&self, e: &Edge, flip: i64) {
        let (u, v) = (e.u() as usize, e.v() as usize);
        self.wedge[u].fetch_add(flip.wrapping_mul(self.sign[v]), Ordering::Relaxed);
        self.wedge[v].fetch_add(flip.wrapping_mul(self.sign[u]), Ordering::Relaxed);
    }

    /// Account for one committed swap replacing `(e, f)` with `(g, h)`:
    /// one wrapping delta on the degree-product sum, eight ±hash adds on
    /// the wedge table. All operations commute, so the accumulators are
    /// identical regardless of commit scheduling.
    #[inline]
    pub(crate) fn on_swap(&self, e: &Edge, f: &Edge, g: &Edge, h: &Edge) {
        let delta = self
            .product_of(g)
            .wrapping_add(self.product_of(h))
            .wrapping_sub(self.product_of(e))
            .wrapping_sub(self.product_of(f));
        self.deg_product.fetch_add(delta, Ordering::Relaxed);
        self.wedge_apply(e, -1);
        self.wedge_apply(f, -1);
        self.wedge_apply(g, 1);
        self.wedge_apply(h, 1);
    }

    /// The degree-product observable, as stored in [`IterationStats`].
    pub(crate) fn deg_product_sum(&self) -> f64 {
        self.deg_product.load(Ordering::Relaxed) as f64
    }

    /// The wedge-sketch observable `Σ_v W(v)²` (one serial O(n) wrapping
    /// reduction per sweep; deterministic by construction).
    pub(crate) fn wedge_sketch(&self) -> f64 {
        let mut acc = 0i64;
        for w in &self.wedge {
            let x = w.load(Ordering::Relaxed);
            acc = acc.wrapping_add(x.wrapping_mul(x));
        }
        acc as f64
    }
}

/// One observable series' diagnostic summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesDiagnostic {
    /// Series name (one of [`SERIES_NAMES`]).
    pub name: &'static str,
    /// Geyer ESS over the trailing window; `None` for a constant
    /// (uninformative) series.
    pub ess: Option<f64>,
}

/// Snapshot of the online convergence diagnostics of a mixing run — the
/// `mixing_diagnostics_v1` section of the `--metrics` document.
#[derive(Clone, Debug, PartialEq)]
pub struct MixingDiagnostics {
    /// Sweeps the diagnostics were computed from (the full series length).
    pub sweeps: usize,
    /// Trailing-window length the ESS estimates cover.
    pub window: u32,
    /// The ESS floor a converged stop requires.
    pub min_ess: u32,
    /// Per-series ESS estimates over the trailing window.
    pub series: Vec<SeriesDiagnostic>,
    /// Smallest ESS among informative series (`None` when every series is
    /// constant or the window has not filled).
    pub min_observed_ess: Option<f64>,
    /// Whether the converged rule would stop here (violations aside).
    pub converged: bool,
}

impl MixingDiagnostics {
    /// Compute the diagnostics over a per-sweep stats series. Usable under
    /// any stop rule (the CLI reports diagnostics for threshold and
    /// fixed-sweep runs too, with the given window/floor).
    pub fn from_iterations(iterations: &[IterationStats], min_ess: u32, window: u32) -> Self {
        let w = (window.max(2)) as usize;
        let filled = iterations.len() >= w;
        let series: Vec<SeriesDiagnostic> = if filled {
            let tail = &iterations[iterations.len() - w..];
            observable_series(tail)
                .iter()
                .zip(SERIES_NAMES)
                .map(|(s, name)| SeriesDiagnostic {
                    name,
                    ess: geyer_ess(s),
                })
                .collect()
        } else {
            SERIES_NAMES
                .iter()
                .map(|&name| SeriesDiagnostic { name, ess: None })
                .collect()
        };
        let min_observed_ess = series
            .iter()
            .filter_map(|s| s.ess)
            .min_by(|a, b| a.total_cmp(b));
        let converged =
            filled && min_observed_ess.is_some_and(|ess| ess >= f64::from(min_ess.max(1)));
        Self {
            sweeps: iterations.len(),
            window,
            min_ess,
            series,
            min_observed_ess,
            converged,
        }
    }

    /// Hand-rolled `mixing_diagnostics_v1` JSON (stable field order, no
    /// serde; non-finite and absent ESS values render as `null`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let num = |v: Option<f64>| match v {
            Some(x) if x.is_finite() => format!("{x}"),
            _ => "null".to_string(),
        };
        let mut json = String::new();
        let _ = write!(
            json,
            "{{\"schema\":\"mixing_diagnostics_v1\",\"sweeps\":{},\"window\":{},\"min_ess\":{},",
            self.sweeps, self.window, self.min_ess
        );
        json.push_str("\"series\":[");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            let _ = write!(json, "{{\"name\":\"{}\",\"ess\":{}}}", s.name, num(s.ess));
        }
        let _ = write!(
            json,
            "],\"min_observed_ess\":{},\"converged\":{}}}",
            num(self.min_observed_ess),
            self.converged
        );
        json
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(values: &[(f64, f64, f64, u64)]) -> Vec<IterationStats> {
        values
            .iter()
            .map(|&(dp, ws, frac, swaps)| IterationStats {
                attempted_pairs: 10,
                successful_swaps: swaps,
                ever_swapped_fraction: frac,
                deg_product_sum: dp,
                wedge_sketch: ws,
                ..Default::default()
            })
            .collect()
    }

    /// A deterministic pseudo-random walk for exercising the estimator.
    fn noise(i: u64) -> f64 {
        (mix64(i ^ 0xA5A5) % 1000) as f64
    }

    #[test]
    fn ess_of_iid_series_is_near_n() {
        let series: Vec<f64> = (0..256).map(noise).collect();
        let ess = geyer_ess(&series).expect("informative series");
        assert!(ess > 64.0, "iid-ish series should have a large ESS: {ess}");
    }

    #[test]
    fn ess_of_correlated_series_is_small() {
        // A slow AR(1)-style walk: heavy autocorrelation, tiny ESS.
        let mut x = 0.0;
        let series: Vec<f64> = (0..256)
            .map(|i| {
                x = 0.98 * x + 0.02 * noise(i);
                x
            })
            .collect();
        let ess = geyer_ess(&series).expect("informative series");
        let iid = geyer_ess(&(0..256).map(noise).collect::<Vec<_>>()).unwrap();
        assert!(ess < iid / 4.0, "correlated {ess} vs iid {iid}");
    }

    #[test]
    fn ess_of_constant_series_is_none() {
        assert_eq!(geyer_ess(&[3.0; 64]), None);
        assert_eq!(geyer_ess(&[1.0]), None);
        assert_eq!(geyer_ess(&[]), None);
    }

    #[test]
    fn converged_needs_a_full_window() {
        let its = stats_with(&[(1.0, 2.0, 0.5, 1); 8]);
        assert!(!converged(&its, 1, 16, false), "window not filled");
    }

    #[test]
    fn all_constant_window_never_converges() {
        // A frozen chain: every observable constant. ESS is undefined
        // everywhere, which must read as "not converged", not "trivially
        // converged".
        let its = stats_with(&[(5.0, 7.0, 1.0, 0); 32]);
        assert!(!converged(&its, 1, 16, false));
    }

    #[test]
    fn informative_wiggly_window_converges_at_low_floor() {
        let its: Vec<IterationStats> = (0..64)
            .map(|i| IterationStats {
                attempted_pairs: 10,
                successful_swaps: 3 + (i % 3),
                ever_swapped_fraction: 1.0,
                deg_product_sum: noise(i),
                wedge_sketch: noise(i ^ 0xFF),
                ..Default::default()
            })
            .collect();
        assert!(converged(&its, 2, 32, false));
        let mut pending = its;
        pending.last_mut().unwrap().self_loops = 1;
        assert!(
            !converged(&pending, 2, 32, true),
            "violations pending must block the stop"
        );
    }

    #[test]
    fn diagnostics_json_shape() {
        let its = stats_with(&[(1.0, 2.0, 0.5, 1); 4]);
        let d = MixingDiagnostics::from_iterations(&its, 8, 16);
        assert_eq!(d.sweeps, 4);
        assert!(!d.converged, "window unfilled");
        let j = d.to_json();
        assert!(
            j.starts_with("{\"schema\":\"mixing_diagnostics_v1\""),
            "{j}"
        );
        for name in SERIES_NAMES {
            assert!(j.contains(&format!("\"name\":\"{name}\"")), "{j}");
        }
        assert!(j.contains("\"min_observed_ess\":null"), "{j}");
        assert!(j.contains("\"converged\":false"), "{j}");
    }

    #[test]
    fn accumulators_match_direct_recomputation_after_swaps() {
        // Maintain accumulators incrementally over a few hand-rolled swaps
        // and compare against building them fresh from the final slots.
        let edges = [
            Edge::new(0, 1),
            Edge::new(2, 3),
            Edge::new(4, 5),
            Edge::new(1, 2),
        ];
        let slots: Vec<Slot> = edges
            .iter()
            .map(|&edge| Slot {
                edge,
                swapped: false,
            })
            .collect();
        let acc = DiagAccumulators::new(&slots, 6, 99);
        // Swap {0,1},{2,3} -> {0,2},{1,3}; then {4,5},{1,2} -> {4,1},{5,2}.
        let (e, f, g, h) = (edges[0], edges[1], Edge::new(0, 2), Edge::new(1, 3));
        acc.on_swap(&e, &f, &g, &h);
        let (e2, f2, g2, h2) = (edges[2], edges[3], Edge::new(1, 4), Edge::new(2, 5));
        acc.on_swap(&e2, &f2, &g2, &h2);
        let final_slots: Vec<Slot> = [g, h, g2, h2]
            .iter()
            .map(|&edge| Slot {
                edge,
                swapped: true,
            })
            .collect();
        let fresh = DiagAccumulators::new(&final_slots, 6, 99);
        assert_eq!(acc.deg_product_sum(), fresh.deg_product_sum());
        assert_eq!(acc.wedge_sketch(), fresh.wedge_sketch());
    }
}
