//! Parallel double-edge swaps (paper Algorithm III.1).
//!
//! A *double-edge swap* takes two edges `e = {u,v}`, `f = {x,y}` and rewires
//! them to `{u,x},{v,y}` or `{u,y},{v,x}`. Swaps preserve the degree
//! sequence exactly; performing many randomly-selected swaps is a Markov
//! Chain Monte Carlo process whose stationary distribution is uniform over
//! the simple graphs realizing the degree sequence (Artzy-Randrup & Stone
//! \[2\], Milo et al. \[22\]).
//!
//! Each iteration of the parallel algorithm:
//!
//! 1. registers every current edge key in a concurrent hash table
//!    (thread-safe `TestAndSet` insertions; the table is an epoch-stamped
//!    [`conchash::EpochHashSet`], so emptying it between sweeps is an O(1)
//!    generation bump rather than a fill);
//! 2. randomly permutes the edge list (reservation-based parallel shuffle);
//! 3. attempts, in parallel, to swap every adjacent pair `(E[2i], E[2i+1])`
//!    of the permuted list, accepting a swap only when neither replacement
//!    edge is a self loop, neither is already present in the table, and the
//!    pair wins the *minimum-index claim* on both replacement keys.
//!
//! The acceptance rule is **deterministic**: where the paper resolves
//! proposal/proposal conflicts by whichever thread's `TestAndSet` lands
//! first (so results depend on scheduling), this implementation runs a
//! claim phase — every pair writes its pair index into a min-claim hash map
//! ([`conchash::EpochHashMap`]) under both replacement keys — followed,
//! after a barrier, by a commit phase in which a pair succeeds iff it holds
//! the minimum claim on both keys. Minimum is a commutative-associative
//! reduction, so the winner set (and hence the whole run) is a pure
//! function of `(edge list, seed)`, independent of the rayon pool size.
//! Because the permutation randomizes pair indices every sweep, no edge is
//! systematically favored; the `stattest` uniformity harness checks the
//! resulting chain against the exact uniform distribution.
//!
//! Rejected swaps leave the pair untouched (an MCMC self-transition, which
//! preserves the chain's symmetry). Conflict rejections are *conservative*:
//! they can only cause extra self-transitions, never a simplicity
//! violation.
//!
//! Non-simple input is legal: multi-edges and self loops are gradually
//! eliminated, because a successful swap of one copy of a duplicated edge
//! replaces it with fresh edges (the paper uses exactly this to "simplify"
//! `O(m)` Chung-Lu output).
//!
//! # Workspace reuse
//!
//! All buffers and tables of a run live in a [`SwapWorkspace`]. The
//! `*_with_workspace` entry points accept one explicitly so that ensembles,
//! retry loops and statistical harnesses reuse a single set of buffers
//! across many runs; the plain entry points allocate a fresh workspace and
//! produce byte-identical results. Once the workspace has grown, a sweep
//! performs no heap allocation (see `crates/swap/tests/alloc_free.rs`) and
//! pays only O(changes) for its bookkeeping: the `ever_swapped` mixing
//! statistic is a relaxed counter bumped on first-swap commits, and the
//! optional violation counts are maintained incrementally from the edges a
//! successful swap actually changed instead of re-sorting the edge list.
//!
//! # Example
//!
//! ```
//! use graphcore::EdgeList;
//! use swap::{swap_edges, SwapConfig};
//!
//! let mut g = EdgeList::from_pairs((0..100).map(|i| (i, (i + 1) % 100)));
//! let before = g.degree_sequence();
//! let stats = swap_edges(&mut g, &SwapConfig::new(5, 42));
//! assert_eq!(g.degree_sequence(), before);  // degrees preserved exactly
//! assert!(g.is_simple());                    // simplicity preserved
//! assert!(stats.total_successful() > 0);
//! ```

pub mod connected;
pub mod diag;
mod pool;
pub mod resume;
pub mod stats;
mod workspace;

pub use connected::{
    swap_edges_connected, swap_edges_connected_with_workspace, ConnectedSwapConfig,
    ConnectedSwapError,
};
pub use diag::{geyer_ess, MixingDiagnostics, SeriesDiagnostic};
pub use fault::{FaultEvent, FaultLog, GenError};
pub use pool::{PooledWorkspace, WorkspacePool};
pub use resume::{CheckpointPolicy, MixControl, MixOutcome, MixReport, MixState, StopRule};
pub use stats::{IterationStats, SwapStats};
pub use workspace::SwapWorkspace;

use conchash::{ShardedEpochHashSet, TableFullError, EMPTY};
use graphcore::{Edge, EdgeList};
use parutil::permute::{apply_darts_serial, darts_into, parallel_permute_with_darts_using};
use parutil::rng::{mix64, mix_bits_into};
use rayon::prelude::*;
use resume::{SegmentCtl, SegmentMeta};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use workspace::{Proposal, Slot};

/// Salt of the per-pair partner-choice bit stream: `side(pair) =
/// mix64(iter_seed ^ pair_idx ^ SIDE_SALT) & 1`. A pure function of
/// `(seed, sweep, pair index)`, so the stream is identical whether the bits
/// are drawn inline or batch-filled, serially or in parallel.
const SIDE_SALT: u64 = 0xD1B5_4A32_D192_ED03;

/// Edges per task in the registration phase. Fixed (not pool-derived):
/// the registration order is irrelevant (set insertion is idempotent), but
/// a fixed block keeps per-task overhead amortized identically everywhere.
const REG_BLOCK: usize = 1 << 14;

/// Pairs per task in the proposal and commit phases. Each task fills a
/// contiguous slab of the proposal buffer and the claim-key buffer —
/// batching the sweep's bookkeeping writes instead of scheduling one rayon
/// item per pair.
const PAIR_BLOCK: usize = 1 << 13;

/// Keys per prefetch batch in the registration and serial-claim loops:
/// hash a batch, issue a prefetch for every home slot, then probe the
/// batch. Each probe is an independent random table read, so the batch
/// turns a chain of serial memory stalls into overlapped misses; 32 keys
/// covers one memory latency at the loop's issue rate. Purely a
/// performance shape — the operations and their order are unchanged.
const PF_BATCH: usize = 32;

/// Pairs per prefetch batch in the proposal and commit phases (each pair
/// touches two table keys, so this keeps outstanding prefetches near
/// [`PF_BATCH`]).
const PAIR_PF_BATCH: usize = 16;

/// Configuration for a swap run.
#[derive(Clone, Debug)]
pub struct SwapConfig {
    /// Number of full permute-and-swap iterations.
    pub iterations: usize,
    /// RNG seed; runs are reproducible for a fixed seed and identical to
    /// the serial reference on **any** rayon pool size (the claim-based
    /// acceptance is scheduling-independent).
    pub seed: u64,
    /// Hash-table probing strategy.
    pub probe: Probe,
    /// When `true`, each iteration's [`IterationStats`] also counts the
    /// remaining self loops and multi-edges. Counts are maintained
    /// incrementally (one multiplicity census at run start, then O(1)
    /// updates per committed swap); off by default.
    pub track_violations: bool,
    /// When `true`, each iteration's [`IterationStats`] also carries the
    /// convergence-diagnostic observables
    /// ([`IterationStats::deg_product_sum`] and
    /// [`IterationStats::wedge_sketch`]). Maintained incrementally (one
    /// accumulator build at run start, then O(1) wrapping updates per
    /// committed swap plus one O(n) reduction per sweep); off by default,
    /// enabled automatically by [`StopRule::Converged`] runs.
    pub track_diagnostics: bool,
}

pub use conchash::{KeyWidth, KeyWidthError, Probe, ResolvedWidth};

impl SwapConfig {
    /// `iterations` swap sweeps with the given seed and default options.
    pub fn new(iterations: usize, seed: u64) -> Self {
        Self {
            iterations,
            seed,
            probe: Probe::Linear,
            track_violations: false,
            track_diagnostics: false,
        }
    }
}

/// How a run may recover from a full concurrent table.
///
/// A `TableFull` fault aborts the sweep *before* any edge is written back,
/// so the graph is untouched and the whole run can be replayed from its
/// recorded seed. Table capacity never influences a swap decision, which
/// makes the replay byte-identical to a run that was sized correctly from
/// the start. The policy bounds how much recovery is attempted: each grow
/// doubles the table capacity, and the last resort is one serial replay
/// (single-threaded sweeps cannot stall on another thread's in-flight
/// insertion). Every action taken is logged into [`SwapStats::events`].
#[derive(Clone, Copy, Debug)]
pub struct RecoveryPolicy {
    /// Maximum number of 2× table reallocations (0 = fail on first fault).
    pub max_grows: u32,
    /// Whether to attempt one serial replay after the grow budget is spent.
    pub serial_fallback: bool,
    /// Ring-buffer cap of the run's [`SwapStats::events`] log
    /// ([`fault::DEFAULT_FAULT_LOG_CAPACITY`] by default): the oldest
    /// events are evicted — and counted — past this many, so a retry storm
    /// cannot grow memory without bound.
    pub event_capacity: usize,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_grows: 4,
            serial_fallback: true,
            event_capacity: fault::DEFAULT_FAULT_LOG_CAPACITY,
        }
    }
}

impl RecoveryPolicy {
    /// Fail on the first fault instead of recovering.
    pub fn none() -> Self {
        Self {
            max_grows: 0,
            serial_fallback: false,
            ..Self::default()
        }
    }
}

/// Watchdog budget for a mixing run ([`try_swap_until_mixed`]): the sweep
/// cap, plus an optional wall-clock deadline checked between sweeps.
#[derive(Clone, Copy, Debug)]
pub struct MixingBudget {
    /// Maximum number of permute-and-swap sweeps.
    pub max_sweeps: usize,
    /// Optional wall-clock limit for the whole run.
    pub max_wall: Option<Duration>,
}

impl MixingBudget {
    /// A budget of `max_sweeps` sweeps with no wall-clock limit.
    pub fn sweeps(max_sweeps: usize) -> Self {
        Self {
            max_sweeps,
            max_wall: None,
        }
    }
}

/// Run parallel double-edge swaps in place. Returns per-iteration statistics.
///
/// Panics if a concurrent table faults even after the default
/// [`RecoveryPolicy`]; prefer [`try_swap_edges`] in code that must survive
/// mis-sized workspaces.
pub fn swap_edges(graph: &mut EdgeList, cfg: &SwapConfig) -> SwapStats {
    swap_edges_with_workspace(graph, cfg, &mut SwapWorkspace::new())
}

/// As [`swap_edges`], reusing caller-owned buffers. Results are
/// byte-identical to a run with a fresh workspace.
pub fn swap_edges_with_workspace(
    graph: &mut EdgeList,
    cfg: &SwapConfig,
    ws: &mut SwapWorkspace,
) -> SwapStats {
    match try_swap_edges_with_workspace(graph, cfg, ws, &RecoveryPolicy::default()) {
        Ok(stats) => stats,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`swap_edges`]: returns a typed [`GenError`] instead of
/// panicking when a concurrent table faults beyond recovery.
pub fn try_swap_edges(graph: &mut EdgeList, cfg: &SwapConfig) -> Result<SwapStats, GenError> {
    try_swap_edges_with_workspace(
        graph,
        cfg,
        &mut SwapWorkspace::new(),
        &RecoveryPolicy::default(),
    )
}

/// As [`try_swap_edges`], reusing caller-owned buffers under an explicit
/// recovery policy.
pub fn try_swap_edges_with_workspace(
    graph: &mut EdgeList,
    cfg: &SwapConfig,
    ws: &mut SwapWorkspace,
    policy: &RecoveryPolicy,
) -> Result<SwapStats, GenError> {
    run_recovering(graph, cfg, true, &|_| false, None, ws, policy, None)
}

/// Serial reference implementation of the identical algorithm (same darts,
/// same pair order, same claim semantics). [`swap_edges`] produces
/// byte-identical output on a rayon pool of any size.
pub fn swap_edges_serial(graph: &mut EdgeList, cfg: &SwapConfig) -> SwapStats {
    swap_edges_serial_with_workspace(graph, cfg, &mut SwapWorkspace::new())
}

/// As [`swap_edges_serial`], reusing caller-owned buffers.
pub fn swap_edges_serial_with_workspace(
    graph: &mut EdgeList,
    cfg: &SwapConfig,
    ws: &mut SwapWorkspace,
) -> SwapStats {
    match run_recovering(
        graph,
        cfg,
        false,
        &|_| false,
        None,
        ws,
        &RecoveryPolicy::default(),
        None,
    ) {
        Ok(stats) => stats,
        Err(e) => panic!("{e}"),
    }
}

/// Fallible [`swap_edges_serial`] with caller-owned buffers and an explicit
/// recovery policy.
pub fn try_swap_edges_serial_with_workspace(
    graph: &mut EdgeList,
    cfg: &SwapConfig,
    ws: &mut SwapWorkspace,
    policy: &RecoveryPolicy,
) -> Result<SwapStats, GenError> {
    run_recovering(graph, cfg, false, &|_| false, None, ws, policy, None)
}

/// Swap until the paper's empirical mixing criterion is met: the fraction
/// of edges that have been produced by a successful swap reaches
/// `threshold` (e.g. 0.999), up to `max_iterations` sweeps. When the input
/// is non-simple, sweeps additionally continue until every violation is
/// eliminated (tracking is enabled automatically in that case).
///
/// Returns the collected statistics; [`SwapStats::iterations_to_mix`] tells
/// whether (and when) the threshold was reached. For a typed error when the
/// budget runs out (plus a wall-clock watchdog), use
/// [`try_swap_until_mixed`].
pub fn swap_until_mixed(
    graph: &mut EdgeList,
    threshold: f64,
    max_iterations: usize,
    seed: u64,
) -> SwapStats {
    swap_until_mixed_with_workspace(
        graph,
        threshold,
        max_iterations,
        seed,
        &mut SwapWorkspace::new(),
    )
}

/// As [`swap_until_mixed`], reusing caller-owned buffers.
pub fn swap_until_mixed_with_workspace(
    graph: &mut EdgeList,
    threshold: f64,
    max_iterations: usize,
    seed: u64,
    ws: &mut SwapWorkspace,
) -> SwapStats {
    match mixing_run(
        graph,
        threshold,
        &MixingBudget::sweeps(max_iterations),
        seed,
        ws,
        &RecoveryPolicy::default(),
    ) {
        Ok((stats, _mixed)) => stats,
        Err(e) => panic!("{e}"),
    }
}

/// Watchdog-guarded [`swap_until_mixed`]: mix up to `budget.max_sweeps`
/// sweeps (and, when set, `budget.max_wall` wall-clock time).
///
/// When the budget runs out before the criterion is met the graph keeps the
/// partial result — every completed sweep is applied, a valid (if
/// under-mixed) degree-preserving state — and the run fails with
/// [`GenError::MixingBudgetExceeded`] reporting exactly how far it got.
pub fn try_swap_until_mixed(
    graph: &mut EdgeList,
    threshold: f64,
    budget: &MixingBudget,
    seed: u64,
) -> Result<SwapStats, GenError> {
    try_swap_until_mixed_with_workspace(
        graph,
        threshold,
        budget,
        seed,
        &mut SwapWorkspace::new(),
        &RecoveryPolicy::default(),
    )
}

/// As [`try_swap_until_mixed`], reusing caller-owned buffers under an
/// explicit recovery policy.
pub fn try_swap_until_mixed_with_workspace(
    graph: &mut EdgeList,
    threshold: f64,
    budget: &MixingBudget,
    seed: u64,
    ws: &mut SwapWorkspace,
    policy: &RecoveryPolicy,
) -> Result<SwapStats, GenError> {
    let (stats, mixed) = mixing_run(graph, threshold, budget, seed, ws, policy)?;
    if mixed {
        return Ok(stats);
    }
    let last = stats.iterations.last().copied().unwrap_or_default();
    Err(GenError::MixingBudgetExceeded {
        sweeps_completed: stats.iterations.len(),
        max_sweeps: budget.max_sweeps,
        ever_swapped_fraction: last.ever_swapped_fraction,
        self_loops: last.self_loops,
        multi_edges: last.multi_edges,
        wall_clock_exceeded: stats.wall_clock_exceeded,
    })
}

/// Shared mixing-run core: runs under the budget and reports whether the
/// stop criterion was met alongside the stats.
fn mixing_run(
    graph: &mut EdgeList,
    threshold: f64,
    budget: &MixingBudget,
    seed: u64,
    ws: &mut SwapWorkspace,
    policy: &RecoveryPolicy,
) -> Result<(SwapStats, bool), GenError> {
    let report = mixing_core(
        graph,
        StopRule::Threshold(threshold),
        budget,
        seed,
        None,
        &mut MixControl::none(),
        ws,
        policy,
    )?;
    let mixed = report.outcome == MixOutcome::Completed;
    Ok((report.stats, mixed))
}

/// Interruptible, checkpointable mixing run.
///
/// Behaves exactly like the non-resumable entry points — byte-identical
/// trajectory for the same `(graph, stop, budget, seed)` on any rayon pool
/// size — but additionally honors the [`MixControl`]: the interrupt flag is
/// drained between sweeps, and intermediate [`MixState`]s are handed to the
/// checkpoint sink per the [`CheckpointPolicy`]. The report says how the
/// run ended and, unless it [`MixOutcome::Completed`], carries the state to
/// continue from (feed it to [`resume_from`], directly or through a
/// `ckpt_v1` round trip).
///
/// `budget.max_sweeps` is the *absolute* sweep cap of the logical run: a
/// resumed continuation counts its predecessor's sweeps against the same
/// cap.
#[allow(clippy::too_many_arguments)]
pub fn try_mix_resumable(
    graph: &mut EdgeList,
    stop: StopRule,
    budget: &MixingBudget,
    seed: u64,
    ctl: &mut MixControl<'_>,
    ws: &mut SwapWorkspace,
    policy: &RecoveryPolicy,
) -> Result<MixReport, GenError> {
    mixing_core(graph, stop, budget, seed, None, ctl, ws, policy)
}

/// Continue a mixing run from a captured [`MixState`].
///
/// Rebuilds the graph from the state and replays the remaining sweeps; the
/// hard invariant (enforced by `tests/checkpoint_resume.rs`) is that
/// *interrupt → checkpoint → resume* yields output byte-identical to the
/// uninterrupted run, across 1/2/8-thread pools. The budget is absolute —
/// `state.completed_sweeps` already counts against `budget.max_sweeps`; to
/// grant more work, raise the cap (the stored [`MixState::sweep_budget`]
/// restores the original one).
pub fn resume_from(
    state: &MixState,
    budget: &MixingBudget,
    ctl: &mut MixControl<'_>,
    ws: &mut SwapWorkspace,
    policy: &RecoveryPolicy,
) -> Result<(EdgeList, MixReport), GenError> {
    state.validate()?;
    let mut graph = EdgeList::from_edges(state.num_vertices, state.edges.clone());
    let report = mixing_core(
        &mut graph,
        state.stop,
        budget,
        state.seed,
        Some(state),
        ctl,
        ws,
        policy,
    )?;
    Ok((graph, report))
}

/// The one mixing-run engine behind both the classic and the resumable
/// entry points: builds the stop criterion, threads the segment controls
/// into [`run_until`] via [`run_recovering`], and classifies the ending.
#[allow(clippy::too_many_arguments)]
fn mixing_core(
    graph: &mut EdgeList,
    stop: StopRule,
    budget: &MixingBudget,
    seed: u64,
    prior: Option<&MixState>,
    ctl: &mut MixControl<'_>,
    ws: &mut SwapWorkspace,
    policy: &RecoveryPolicy,
) -> Result<MixReport, GenError> {
    let mut cfg = SwapConfig::new(budget.max_sweeps, seed);
    // Violation tracking is part of the trajectory-describing config: a
    // fresh run derives it from the input's simplicity, a resumed run must
    // keep what it started with (its input may have been simplified since).
    cfg.track_violations = match prior {
        Some(st) => st.track_violations,
        None => !graph.is_simple(),
    };
    let needs_simplify = cfg.track_violations;
    // Diagnostics tracking is likewise trajectory-describing: the converged
    // rule needs the observable series from sweep 0, and a resumed run must
    // keep recording whatever its predecessor recorded.
    cfg.track_diagnostics = match prior {
        Some(st) => st.track_diagnostics,
        None => matches!(stop, StopRule::Converged { .. }),
    };
    let criterion = move |iterations: &[IterationStats]| match stop {
        StopRule::Threshold(t) => iterations.last().is_some_and(|it| {
            it.ever_swapped_fraction >= t
                && (!needs_simplify || (it.self_loops == 0 && it.multi_edges == 0))
        }),
        StopRule::Converged { min_ess, window } => {
            diag::converged(iterations, min_ess, window, needs_simplify)
        }
        StopRule::FixedSweeps => false,
    };
    let deadline = budget.max_wall.map(|d| Instant::now() + d);
    let mut seg = SegmentCtl {
        start_iter: prior.map_or(0, |st| st.completed_sweeps),
        init_swapped: prior.map(|st| st.swapped.as_slice()),
        prior: prior.map_or(&[][..], |st| st.iterations.as_slice()),
        meta: SegmentMeta {
            num_vertices: graph.num_vertices(),
            seed,
            sweep_budget: budget.max_sweeps as u64,
            stop,
            track_violations: cfg.track_violations,
            track_diagnostics: cfg.track_diagnostics,
        },
        interrupt: ctl.interrupt,
        policy: ctl.policy,
        sink: ctl.sink.as_deref_mut(),
        interrupted: false,
        sink_error: None,
        final_state: None,
    };
    let stats = run_recovering(
        graph,
        &cfg,
        true,
        &criterion,
        deadline,
        ws,
        policy,
        Some(&mut seg),
    )?;
    if let Some(e) = seg.sink_error {
        return Err(e);
    }
    // A graph too small to swap (m < 2) has nothing to mix; treat it as
    // trivially complete rather than forever over budget.
    let completed_rule = match stop {
        StopRule::Threshold(_) | StopRule::Converged { .. } => criterion(&stats.iterations),
        StopRule::FixedSweeps => {
            stats.iterations.len() as u64 >= budget.max_sweeps as u64
                && !stats.wall_clock_exceeded
                && !seg.interrupted
        }
    };
    let outcome = if graph.len() < 2 || completed_rule {
        MixOutcome::Completed
    } else if seg.interrupted {
        MixOutcome::Interrupted
    } else {
        MixOutcome::BudgetExhausted
    };
    let checkpoint = match outcome {
        MixOutcome::Completed => None,
        _ => seg.final_state,
    };
    Ok(MixReport {
        stats,
        outcome,
        checkpoint,
    })
}

/// Bounded grow-and-retry driver around [`run_until`].
///
/// A `TableFull` fault leaves the graph untouched (edges are written back
/// only after the final sweep), so recovery replays the *whole run* from
/// the same seed over larger tables: first up to `policy.max_grows` 2×
/// grows, then — because a single thread can always make progress — one
/// serial replay, then a typed [`GenError::TableFull`]. Each recovery step
/// is recorded in the returned [`SwapStats::events`].
#[allow(clippy::too_many_arguments)]
fn run_recovering(
    graph: &mut EdgeList,
    cfg: &SwapConfig,
    parallel: bool,
    stop_when: &(dyn Fn(&[IterationStats]) -> bool + Sync),
    deadline: Option<Instant>,
    ws: &mut SwapWorkspace,
    policy: &RecoveryPolicy,
    mut seg: Option<&mut SegmentCtl<'_, '_>>,
) -> Result<SwapStats, GenError> {
    let mut events = FaultLog::with_capacity(policy.event_capacity);
    let mut grows = 0u32;
    let mut degraded = false;
    // Resolve the requested key width against this run's vertex count
    // before any sweep: `Auto` picks the narrowest packed table layout the
    // ids fit, while a forced width that cannot hold them is a typed input
    // error (never a silent truncation).
    ws.resolve_width_for(graph.num_vertices() as u64)
        .map_err(|e| GenError::bad_input(e.to_string()))?;
    loop {
        match run_until(
            graph,
            cfg,
            parallel && !degraded,
            stop_when,
            deadline,
            ws,
            seg.as_deref_mut(),
        ) {
            Ok(mut stats) => {
                if let Some(m) = ws.metrics() {
                    m.fault_events.add(events.total_recorded());
                }
                stats.events = events;
                return Ok(stats);
            }
            Err(fault) => {
                if grows < policy.max_grows {
                    grows += 1;
                    let new_capacity = ws.grow_tables();
                    if let Some(m) = ws.metrics() {
                        m.swap_grow_retries.incr();
                    }
                    events.push(FaultEvent::TableGrown {
                        table: fault.table,
                        occupancy: fault.occupancy,
                        old_capacity: fault.capacity,
                        new_capacity,
                        attempt: grows,
                    });
                    continue;
                }
                if policy.serial_fallback && parallel && !degraded {
                    degraded = true;
                    if let Some(m) = ws.metrics() {
                        m.swap_serial_fallbacks.incr();
                    }
                    events.push(FaultEvent::SerialFallback { after_grows: grows });
                    continue;
                }
                return Err(GenError::TableFull {
                    table: fault.table,
                    occupancy: fault.occupancy,
                    capacity: fault.capacity,
                    grows_attempted: grows,
                });
            }
        }
    }
}

/// Incremental simplicity-violation counters.
///
/// At run start a single census records the self-loop count and, for every
/// key occurring `c ≥ 2` times, its multiplicity (`multi_edges` is the sum
/// of the extras `c - 1`, exactly as `EdgeList::simplicity_report`
/// computes it). A committed swap can only *remove* violations — proposals
/// rejecting self loops and table hits mean no added edge ever duplicates a
/// live key or closes a loop — so per-commit updates are decrements on the
/// two removed edges: the self-loop counter drops for each removed loop,
/// and the multiplicity of a removed key drops, shedding one `multi_edges`
/// extra while copies remain. The committed-pair set is deterministic, so
/// the counters are too, on any pool size.
struct ViolationCounters {
    self_loops: AtomicU64,
    multi_edges: AtomicU64,
    /// Remaining multiplicity per initially-duplicated key. Keys added by
    /// swaps are never duplicated, so the map never grows after the census.
    multiplicity: HashMap<u64, AtomicU64>,
}

impl ViolationCounters {
    fn census(slots: &[Slot]) -> Self {
        let mut self_loops = 0u64;
        let mut counts: HashMap<u64, u64> = HashMap::new();
        for s in slots {
            self_loops += u64::from(s.edge.is_self_loop());
            *counts.entry(s.edge.key()).or_insert(0) += 1;
        }
        let mut multi_edges = 0u64;
        let multiplicity: HashMap<u64, AtomicU64> = counts
            .into_iter()
            .filter(|&(_, c)| c >= 2)
            .map(|(k, c)| {
                multi_edges += c - 1;
                (k, AtomicU64::new(c))
            })
            .collect();
        Self {
            self_loops: AtomicU64::new(self_loops),
            multi_edges: AtomicU64::new(multi_edges),
            multiplicity,
        }
    }

    /// Account for the removal of `edge` by a committed swap.
    #[inline]
    fn on_removed(&self, edge: &Edge) {
        if edge.is_self_loop() {
            self.self_loops.fetch_sub(1, Ordering::Relaxed);
        }
        let Some(c) = self.multiplicity.get(&edge.key()) else {
            return;
        };
        // Saturating decrement: a key fully drained and later re-added by a
        // swap (legal once no copy is live) must not underflow. Which commit
        // observes which predecessor value is scheduling-dependent, but the
        // *number* of decrements from 2 or above is not.
        let mut cur = c.load(Ordering::Relaxed);
        while cur > 0 {
            match c.compare_exchange_weak(cur, cur - 1, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(prev) => {
                    if prev >= 2 {
                        self.multi_edges.fetch_sub(1, Ordering::Relaxed);
                    }
                    break;
                }
                Err(now) => cur = now,
            }
        }
    }
}

/// One complete swap run: all sweeps, then a single write-back of the final
/// edges into `graph`. On `Err` (a full concurrent table) **nothing has
/// been written back** — the graph still holds its input state, which is
/// what makes the grow-and-retry replay in [`run_recovering`] exact.
///
/// A [`SegmentCtl`] makes the run one *segment* of a resumable trajectory:
/// sweeps run over the absolute index range `start_iter..cfg.iterations`
/// (every per-sweep seed derives from the absolute index, so a segment
/// boundary is invisible to the RNG stream), slot flags and prior per-sweep
/// stats are seeded from the previous segment, the interrupt flag is
/// drained between sweeps, and checkpoints are handed to the sink per the
/// policy. Segment out-fields are reset on entry, so a grow-and-retry
/// replay of a faulted attempt stays exact.
/// Register one block of edges into the membership table, pipelined in
/// [`PF_BATCH`]-key batches: compute-and-prefetch every key's home slot,
/// then probe the batch. Each probe is an independent random read, so the
/// prefetch pass overlaps their cache misses instead of paying them one
/// full latency at a time. Insertion is idempotent and order-free, so the
/// batching is byte-invisible.
#[inline]
fn register_block(table: &ShardedEpochHashSet, block: &[Slot]) -> Result<(), TableFullError> {
    let mut keys = [0u64; PF_BATCH];
    for chunk in block.chunks(PF_BATCH) {
        let batch = &mut keys[..chunk.len()];
        for (k, s) in batch.iter_mut().zip(chunk) {
            *k = s.edge.key();
            table.prefetch(*k);
        }
        for &k in batch.iter() {
            table.try_test_and_set(k)?;
        }
    }
    Ok(())
}

fn run_until(
    graph: &mut EdgeList,
    cfg: &SwapConfig,
    parallel: bool,
    stop_when: &(dyn Fn(&[IterationStats]) -> bool + Sync),
    deadline: Option<Instant>,
    ws: &mut SwapWorkspace,
    mut seg: Option<&mut SegmentCtl<'_, '_>>,
) -> Result<SwapStats, TableFullError> {
    let m = graph.len();
    let mut stats = SwapStats::default();
    let start = seg.as_ref().map_or(0, |s| s.start_iter);
    let total = cfg.iterations as u64;
    if let Some(s) = seg.as_deref_mut() {
        s.interrupted = false;
        s.sink_error = None;
        s.final_state = None;
        stats.iterations.extend_from_slice(s.prior);
    }
    if m < 2 || total <= start {
        if let Some(s) = seg {
            // Nothing to run, but the continuation state must still be
            // well-formed (flags carried over, stats already prepended).
            let slots: Vec<Slot> = graph
                .edges()
                .iter()
                .enumerate()
                .map(|(i, &edge)| Slot {
                    edge,
                    swapped: s
                        .init_swapped
                        .is_some_and(|f| f.get(i).copied() == Some(true)),
                })
                .collect();
            s.final_state = Some(s.meta.state_from_slots(&slots, &stats.iterations));
        }
        return Ok(stats);
    }
    stats
        .iterations
        .reserve(((total - start) as usize).min(1 << 12));
    ws.prepare(m, cfg.probe);
    let SwapWorkspace {
        slots,
        darts,
        proposals,
        sides,
        claim_keys,
        scatter,
        permute,
        table,
        claims,
        metrics,
        ..
    } = ws;
    let metrics = metrics.as_deref();
    let table: &ShardedEpochHashSet = table.as_ref().expect("prepare populates the table");
    let claims = claims.as_ref().expect("prepare populates the claim map");
    let shard_count = claims.shard_count();
    slots.clear();
    match seg.as_ref().and_then(|s| s.init_swapped) {
        Some(flags) => {
            debug_assert_eq!(flags.len(), m, "resume flags must match the edge count");
            slots.extend(
                graph
                    .edges()
                    .iter()
                    .zip(flags.iter())
                    .map(|(&edge, &swapped)| Slot { edge, swapped }),
            );
        }
        None => slots.extend(graph.edges().iter().map(|&edge| Slot {
            edge,
            swapped: false,
        })),
    }

    let violations = cfg
        .track_violations
        .then(|| ViolationCounters::census(slots));
    // Convergence observables: accumulators are pure functions (mod 2⁶⁴) of
    // the current edge multiset, so building them here makes resumed
    // segments and grow-and-retry replays exact.
    let diag = cfg
        .track_diagnostics
        .then(|| diag::DiagAccumulators::new(slots, graph.num_vertices(), cfg.seed));
    // Mixing statistic: slots that have ever held a successfully swapped
    // edge. Commits bump the counter for each slot flipping for the first
    // time; every slot flips at most once, so the relaxed sum is exact and
    // deterministic (it replaces a full O(m) rescan per sweep). A resumed
    // segment starts from the carried-over flag count.
    let ever = AtomicU64::new(slots.iter().filter(|s| s.swapped).count() as u64);
    let mut sweeps_since_ckpt = 0u64;
    let mut last_ckpt = Instant::now();

    for iter in start..total {
        // Graceful shutdown: the interrupt flag is drained between sweeps,
        // so the state captured below is always a whole-sweep boundary.
        if let Some(s) = seg.as_deref_mut() {
            if s.interrupt.is_some_and(|f| f.load(Ordering::Acquire)) {
                s.interrupted = true;
                break;
            }
        }
        // Watchdog: the wall-clock deadline is checked between sweeps (a
        // sweep is never interrupted mid-flight, so the edge list stays a
        // valid degree-preserving state).
        if deadline.is_some_and(|d| Instant::now() >= d) {
            stats.wall_clock_exceeded = true;
            break;
        }
        let iter_seed = mix64(cfg.seed ^ iter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        table.clear_shared();
        claims.clear_shared();

        // Phase 1: register all current edges, in fixed-size blocks (order
        // is irrelevant — insertion is idempotent and the table is sharded
        // by key, not by thread). (Timed into the sweep counter: the sweep
        // span below restarts after the permute, so the two spans together
        // cover everything but the permute.)
        {
            let _span = metrics.map(|m| m.phase_sweep_ns.start_span());
            if parallel {
                slots
                    .par_chunks(REG_BLOCK)
                    .try_for_each(|block| register_block(table, block))?;
            } else {
                register_block(table, slots)?;
            }
        }

        // Phase 2: permute, and batch-fill the sweep's partner-choice bits
        // (same per-index formula as the historical inline draw, so the
        // proposal stream is unchanged).
        {
            let _span = metrics.map(|m| m.phase_permute_ns.start_span());
            darts_into(darts, iter_seed);
            if parallel {
                parallel_permute_with_darts_using(slots, darts, permute);
            } else {
                apply_darts_serial(slots, darts);
            }
            mix_bits_into(sides, iter_seed, SIDE_SALT);
        }
        let _sweep_span = metrics.map(|m| m.phase_sweep_ns.start_span());

        // Phase 3a: deterministic proposals, checked against the current
        // edge set only (never against other pairs' proposals). Each task
        // fills one contiguous slab of proposals plus the matching slab of
        // claim keys (`EMPTY` marks pairs with nothing to claim), so the
        // claim phase below can work from a dense key array.
        //
        // Each slab runs in [`PAIR_PF_BATCH`]-pair batches of two passes:
        // pass A computes the replacement candidates, applies the
        // arithmetic-only rejections (self loop, duplicate), and prefetches
        // the membership slots of the survivors; pass B performs the table
        // lookups against warmed lines. The rejection tests and their
        // precedence are exactly the historical `propose_swap` sequence, so
        // the proposal stream is unchanged.
        let npairs = m / 2;
        {
            let slots: &[Slot] = slots;
            let sides: &[u8] = sides;
            let fill = |base: usize, props: &mut [Proposal], cks: &mut [u64]| {
                let nb = props.len();
                let mut start = 0usize;
                while start < nb {
                    let len = PAIR_PF_BATCH.min(nb - start);
                    for (j, out) in props[start..start + len].iter_mut().enumerate() {
                        let pair_idx = base + start + j;
                        let lo = pair_idx * 2;
                        let e = slots[lo].edge;
                        let f = slots[lo + 1].edge;
                        let (g, h) = e.swap_with(&f, sides[pair_idx] != 0);
                        *out = if g.is_self_loop() || h.is_self_loop() {
                            Proposal::RejectSelfLoop
                        } else if g.key() == h.key() {
                            Proposal::RejectDuplicate
                        } else {
                            table.prefetch(g.key());
                            table.prefetch(h.key());
                            Proposal::Accept(g, h)
                        };
                    }
                    for (j, out) in props[start..start + len].iter_mut().enumerate() {
                        if let Proposal::Accept(g, h) = *out {
                            if table.contains(g.key()) || table.contains(h.key()) {
                                *out = Proposal::RejectExists;
                            }
                        }
                        let (k0, k1) = match *out {
                            Proposal::Accept(g, h) => (g.key(), h.key()),
                            _ => (EMPTY, EMPTY),
                        };
                        cks[2 * (start + j)] = k0;
                        cks[2 * (start + j) + 1] = k1;
                    }
                    start += len;
                }
            };
            if parallel {
                proposals[..npairs]
                    .par_chunks_mut(PAIR_BLOCK)
                    .zip(claim_keys.par_chunks_mut(2 * PAIR_BLOCK))
                    .enumerate()
                    .for_each(|(b, (props, cks))| fill(b * PAIR_BLOCK, props, cks));
            } else {
                fill(0, &mut proposals[..npairs], claim_keys);
            }
            // Odd edge count: the trailing singleton has no partner and
            // self-transitions unconditionally.
            if let Some(last) = proposals.get_mut(npairs) {
                *last = Proposal::RejectSingleton;
            }
        }

        // Phase 3b: every live proposal claims both replacement keys with
        // its pair index; the surviving claim per key is the minimum index,
        // regardless of scheduling. In parallel the claims are first
        // partitioned by destination shard (two deterministic bulk passes),
        // then one worker per shard applies its run as a tight uncontended
        // loop — replacing the per-key CAS ping-pong on shared cache lines
        // with single-writer sweeps. Minimum is commutative and
        // associative, so the settled claim map is identical to the serial
        // facade loop below, for every shard count and pool size.
        if parallel {
            scatter.scatter(claim_keys, EMPTY, shard_count, |k| claims.shard_of(k));
            (0..shard_count).into_par_iter().try_for_each(|s| {
                let (keys, idxs) = scatter.shard_slice(s);
                // The claim-key buffer holds two keys per pair, so the
                // record index maps back to its pair as `idx / 2`. The run
                // is applied software-pipelined inside the facade.
                claims.try_claim_min_run(s, keys, idxs, |idx| idx >> 1)
            })?;
        } else {
            // Same prefetch-batch shape as registration: warm both claim
            // slots of a batch of accepted pairs, then apply the claims.
            let mut start = 0usize;
            while start < proposals.len() {
                let len = PAIR_PF_BATCH.min(proposals.len() - start);
                for p in &proposals[start..start + len] {
                    if let Proposal::Accept(g, h) = p {
                        claims.prefetch(g.key());
                        claims.prefetch(h.key());
                    }
                }
                for (j, p) in proposals[start..start + len].iter().enumerate() {
                    if let Proposal::Accept(g, h) = p {
                        let i = (start + j) as u64;
                        claims.try_claim_min(g.key(), i)?;
                        claims.try_claim_min(h.key(), i)?;
                    }
                }
                start += len;
            }
        }

        // Phase 3c: a pair commits iff it holds the minimum claim on both
        // of its replacement keys.
        let proposals: &[Proposal] = proposals;
        let commit = |pair_idx: usize, pair: &mut [Slot]| -> u64 {
            let Proposal::Accept(g, h) = proposals[pair_idx] else {
                return 0;
            };
            let i = pair_idx as u64;
            if claims.get(g.key()) != Some(i) || claims.get(h.key()) != Some(i) {
                return 0;
            }
            let newly = u64::from(!pair[0].swapped) + u64::from(!pair[1].swapped);
            if newly > 0 {
                ever.fetch_add(newly, Ordering::Relaxed);
            }
            if let Some(v) = &violations {
                v.on_removed(&pair[0].edge);
                v.on_removed(&pair[1].edge);
            }
            if let Some(d) = &diag {
                d.on_swap(&pair[0].edge, &pair[1].edge, &g, &h);
            }
            pair[0] = Slot {
                edge: g,
                swapped: true,
            };
            pair[1] = Slot {
                edge: h,
                swapped: true,
            };
            1
        };
        // Each slab commits in [`PAIR_PF_BATCH`]-pair batches: warm the
        // claim slots of the batch's accepted proposals, then run the
        // commit checks against them. An odd-length trailing slab leaves
        // its singleton slot untouched, exactly as the per-pair chunking
        // did (its proposal is `RejectSingleton`).
        let commit_slab = |base: usize, slab: &mut [Slot]| -> u64 {
            let pairs = slab.len() / 2;
            let mut successes = 0u64;
            let mut start = 0usize;
            while start < pairs {
                let len = PAIR_PF_BATCH.min(pairs - start);
                for p in &proposals[base + start..base + start + len] {
                    if let Proposal::Accept(g, h) = p {
                        claims.prefetch(g.key());
                        claims.prefetch(h.key());
                    }
                }
                for j in start..start + len {
                    successes += commit(base + j, &mut slab[2 * j..2 * j + 2]);
                }
                start += len;
            }
            successes
        };
        let successes: u64 = if parallel {
            // Blocked like phase 3a: each task commits a contiguous slab of
            // pairs and accumulates its successes locally.
            slots
                .par_chunks_mut(2 * PAIR_BLOCK)
                .enumerate()
                .map(|(b, block)| commit_slab(b * PAIR_BLOCK, block))
                .sum()
        } else {
            commit_slab(0, slots)
        };

        if let Some(mx) = metrics {
            // One pass over the (1-byte-tag) proposal buffer tallies the
            // causes; conflict rejections are the candidates that survived
            // proposal but lost the min-claim race at commit.
            let mut candidates = 0u64;
            let mut self_loop = 0u64;
            let mut duplicate = 0u64;
            let mut exists = 0u64;
            let mut singleton = 0u64;
            for p in proposals {
                match p {
                    Proposal::Accept(..) => candidates += 1,
                    Proposal::RejectSelfLoop => self_loop += 1,
                    Proposal::RejectDuplicate => duplicate += 1,
                    Proposal::RejectExists => exists += 1,
                    Proposal::RejectSingleton => singleton += 1,
                }
            }
            mx.swap_sweeps.incr();
            mx.swap_proposals.add(proposals.len() as u64);
            mx.swap_accepts.add(successes);
            mx.swap_reject_self_loop.add(self_loop);
            mx.swap_reject_duplicate.add(duplicate);
            mx.swap_reject_exists.add(exists);
            mx.swap_reject_singleton.add(singleton);
            mx.swap_reject_conflict.add(candidates - successes);
        }

        let mut it_stats = IterationStats {
            attempted_pairs: (m / 2) as u64,
            successful_swaps: successes,
            ever_swapped_fraction: ever.load(Ordering::Relaxed) as f64 / m as f64,
            ..Default::default()
        };
        if let Some(v) = &violations {
            it_stats.self_loops = v.self_loops.load(Ordering::Relaxed);
            it_stats.multi_edges = v.multi_edges.load(Ordering::Relaxed);
        }
        if let Some(d) = &diag {
            it_stats.deg_product_sum = d.deg_product_sum();
            it_stats.wedge_sketch = d.wedge_sketch();
        }
        // The criterion sees the whole series (prior segments included):
        // convergence is a property of the trajectory, not of one sweep.
        stats.iterations.push(it_stats);
        if stop_when(&stats.iterations) {
            break;
        }
        // Periodic checkpoint: hand the whole-sweep-boundary state to the
        // sink. A sink failure aborts the run (durability was requested and
        // cannot be provided); the error surfaces through the segment.
        if let Some(s) = seg.as_deref_mut() {
            sweeps_since_ckpt += 1;
            if s.policy
                .is_some_and(|p| p.due(sweeps_since_ckpt, last_ckpt))
            {
                if let Some(sink) = s.sink.as_mut() {
                    let state = s.meta.state_from_slots(slots, &stats.iterations);
                    if let Err(e) = sink(&state) {
                        s.sink_error = Some(e);
                        break;
                    }
                }
                sweeps_since_ckpt = 0;
                last_ckpt = Instant::now();
            }
        }
    }

    // Write the final edges back.
    graph
        .edges_mut()
        .iter_mut()
        .zip(slots.iter())
        .for_each(|(e, s)| *e = s.edge);
    if let Some(s) = seg {
        s.final_state = Some(s.meta.state_from_slots(slots, &stats.iterations));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphcore::DegreeDistribution;
    use proptest_lite::prelude::*;
    use std::collections::HashMap;

    fn ring(n: u32) -> EdgeList {
        EdgeList::from_pairs((0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn preserves_degree_sequence_exactly() {
        let mut g = ring(100);
        let before = g.degree_sequence();
        let stats = swap_edges(&mut g, &SwapConfig::new(5, 42));
        assert_eq!(g.degree_sequence(), before);
        assert!(stats.total_successful() > 0, "no swaps happened");
    }

    #[test]
    fn preserves_simplicity() {
        let mut g = ring(200);
        swap_edges(&mut g, &SwapConfig::new(10, 7));
        assert!(g.is_simple());
    }

    #[test]
    fn serial_matches_parallel_on_one_thread() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap();
        let mut a = ring(150);
        let mut b = a.clone();
        let cfg = SwapConfig::new(4, 99);
        let sa = pool.install(|| swap_edges(&mut a, &cfg));
        let sb = swap_edges_serial(&mut b, &cfg);
        assert_eq!(a, b);
        assert_eq!(sa.total_successful(), sb.total_successful());
    }

    #[test]
    fn deterministic_per_seed_serial() {
        let mut a = ring(100);
        let mut b = ring(100);
        swap_edges_serial(&mut a, &SwapConfig::new(3, 5));
        swap_edges_serial(&mut b, &SwapConfig::new(3, 5));
        assert_eq!(a, b);
    }

    #[test]
    fn zero_iterations_no_op() {
        let mut g = ring(10);
        let orig = g.clone();
        let stats = swap_edges(&mut g, &SwapConfig::new(0, 1));
        assert_eq!(g, orig);
        assert!(stats.iterations.is_empty());
    }

    #[test]
    fn tiny_graphs_no_panic() {
        for n in [0u32, 3, 4] {
            let mut g = if n == 0 { EdgeList::new(0) } else { ring(n) };
            swap_edges(&mut g, &SwapConfig::new(3, 1));
            assert!(g.is_simple());
        }
    }

    #[test]
    fn single_edge_cannot_swap() {
        let mut g = EdgeList::from_pairs([(0, 1)]);
        let stats = swap_edges(&mut g, &SwapConfig::new(5, 1));
        assert_eq!(stats.total_successful(), 0);
        assert_eq!(g.edges()[0], Edge::new(0, 1));
    }

    #[test]
    fn simplifies_multigraph() {
        // Start from an O(m)-style multigraph; violations must shrink to 0.
        let dist =
            DegreeDistribution::from_pairs(vec![(1, 120), (2, 40), (10, 8), (40, 2)]).unwrap();
        let mut g = generators::chung_lu_om(&dist, 3);
        let realized = g.degree_distribution();
        let before = g.simplicity_report();
        assert!(
            before.self_loops + before.multi_edges > 0,
            "fixture should start non-simple"
        );
        let mut cfg = SwapConfig::new(40, 11);
        cfg.track_violations = true;
        let stats = swap_edges(&mut g, &cfg);
        let last = stats.iterations.last().unwrap();
        assert_eq!(last.self_loops + last.multi_edges, 0, "not simplified");
        assert!(g.is_simple());
        // Swaps preserve the *realized* degree sequence of the multigraph
        // (which matches `dist` only in expectation).
        assert_eq!(g.degree_distribution(), realized);
    }

    #[test]
    fn ever_swapped_fraction_monotone() {
        let mut g = ring(500);
        let stats = swap_edges(&mut g, &SwapConfig::new(8, 13));
        let fracs: Vec<f64> = stats
            .iterations
            .iter()
            .map(|i| i.ever_swapped_fraction)
            .collect();
        for w in fracs.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "fraction decreased: {fracs:?}");
        }
        assert!(*fracs.last().unwrap() > 0.9, "mixing too slow: {fracs:?}");
    }

    /// Brute-force all simple graphs on `n` labeled vertices realizing a
    /// degree sequence.
    fn enumerate_realizations(degs: &[u32]) -> Vec<Vec<u64>> {
        let n = degs.len();
        let pairs: Vec<(u32, u32)> = (0..n as u32)
            .flat_map(|u| ((u + 1)..n as u32).map(move |v| (u, v)))
            .collect();
        let target_edges: u32 = degs.iter().sum::<u32>() / 2;
        let mut out = Vec::new();
        for mask in 0u32..(1 << pairs.len()) {
            if mask.count_ones() != target_edges {
                continue;
            }
            let mut deg = vec![0u32; n];
            let mut keys = Vec::new();
            for (i, &(u, v)) in pairs.iter().enumerate() {
                if mask >> i & 1 == 1 {
                    deg[u as usize] += 1;
                    deg[v as usize] += 1;
                    keys.push(Edge::new(u, v).key());
                }
            }
            if deg == degs {
                keys.sort_unstable();
                out.push(keys);
            }
        }
        out
    }

    #[test]
    fn uniform_sampling_over_realizations() {
        // The paper validates its swap procedure against the analytically
        // expected sample (Milo et al. [22]); we do the same exhaustively:
        // the degree sequence [2,2,2,1,1] has a small set of labeled
        // realizations, and after enough swap iterations every realization
        // must appear with equal frequency.
        let degs = vec![2u32, 2, 2, 1, 1];
        let support = enumerate_realizations(&degs);
        assert!(support.len() > 1);
        let start =
            generators::havel_hakimi_sequence(&graphcore::DegreeSequence::new(degs.clone()))
                .unwrap();
        let trials = 6000;
        let mut counts: HashMap<Vec<u64>, u64> = HashMap::new();
        for t in 0..trials {
            let mut g = start.clone();
            swap_edges_serial(&mut g, &SwapConfig::new(12, 0xC0FFEE + t));
            let mut keys: Vec<u64> = g.edges().iter().map(|e| e.key()).collect();
            keys.sort_unstable();
            *counts.entry(keys).or_insert(0) += 1;
        }
        // Every realization reached.
        assert_eq!(
            counts.len(),
            support.len(),
            "chain did not reach all realizations"
        );
        let expect = trials as f64 / support.len() as f64;
        let chi2: f64 = support
            .iter()
            .map(|k| {
                let c = *counts.get(k).unwrap_or(&0) as f64;
                (c - expect) * (c - expect) / expect
            })
            .sum();
        // d.o.f. = support - 1; allow the 99.9th percentile for robustness.
        // For the sequences used here support is small (< 20), so 45 is a
        // generous universal bound.
        assert!(chi2 < 45.0, "chi2 = {chi2} over {} states", support.len());
    }

    #[test]
    fn undersized_workspace_grows_and_recovers_identically() {
        let cfg = SwapConfig::new(4, 77);
        let mut want = ring(300);
        swap_edges(&mut want, &cfg);

        let mut got = ring(300);
        let mut ws = SwapWorkspace::with_table_capacity(64);
        let stats =
            try_swap_edges_with_workspace(&mut got, &cfg, &mut ws, &RecoveryPolicy::default())
                .expect("grow-and-retry should recover");
        assert_eq!(got, want, "recovered run must be byte-identical");
        assert!(
            stats
                .events
                .iter()
                .any(|e| matches!(e, FaultEvent::TableGrown { .. })),
            "recovery must be logged, got {:?}",
            stats.events
        );
    }

    #[test]
    fn recovery_disabled_reports_table_full_and_leaves_graph_untouched() {
        let mut g = ring(300);
        let mut ws = SwapWorkspace::with_table_capacity(16);
        let err = try_swap_edges_with_workspace(
            &mut g,
            &SwapConfig::new(2, 5),
            &mut ws,
            &RecoveryPolicy::none(),
        )
        .expect_err("16-key tables cannot hold 300 edges");
        assert_eq!(err.error_code(), "table_full");
        match err {
            GenError::TableFull {
                occupancy,
                capacity,
                grows_attempted,
                ..
            } => {
                assert_eq!(grows_attempted, 0);
                assert!(occupancy <= capacity, "{occupancy} > {capacity}");
            }
            other => panic!("unexpected error: {other}"),
        }
        assert_eq!(g, ring(300), "aborted run must not write back");
    }

    #[test]
    fn watchdog_reports_accurate_sweep_counts() {
        // The 2-edge path can never swap (one pairing recreates the same
        // edges, the other makes a self loop), so any threshold > 0 runs
        // the full budget — deterministically.
        let mut g = EdgeList::from_pairs([(0, 1), (1, 2)]);
        let err = try_swap_until_mixed(&mut g, 0.5, &MixingBudget::sweeps(3), 9)
            .expect_err("an unswappable graph cannot mix");
        match err {
            GenError::MixingBudgetExceeded {
                sweeps_completed,
                max_sweeps,
                ever_swapped_fraction,
                wall_clock_exceeded,
                ..
            } => {
                assert_eq!(sweeps_completed, 3);
                assert_eq!(max_sweeps, 3);
                assert_eq!(ever_swapped_fraction, 0.0);
                assert!(!wall_clock_exceeded);
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn watchdog_wall_clock_deadline_fires() {
        let mut g = ring(400);
        let budget = MixingBudget {
            max_sweeps: 1000,
            max_wall: Some(std::time::Duration::ZERO),
        };
        let err = try_swap_until_mixed(&mut g, 0.999, &budget, 3)
            .expect_err("an already-expired deadline must fail");
        match err {
            GenError::MixingBudgetExceeded {
                sweeps_completed,
                wall_clock_exceeded,
                ..
            } => {
                assert_eq!(sweeps_completed, 0);
                assert!(wall_clock_exceeded);
            }
            other => panic!("unexpected error: {other}"),
        }
        assert_eq!(g, ring(400), "no sweep ran, so the graph is unchanged");
    }

    #[test]
    fn trivial_graphs_are_trivially_mixed() {
        let mut g = EdgeList::from_pairs([(0, 1)]);
        let stats = try_swap_until_mixed(&mut g, 0.999, &MixingBudget::sweeps(5), 1)
            .expect("m < 2 has nothing to mix");
        assert_eq!(stats.total_successful(), 0);
    }

    #[test]
    fn swap_until_mixed_stops_early() {
        let mut g = ring(400);
        let stats = swap_until_mixed(&mut g, 0.95, 50, 3);
        let used = stats.iterations.len();
        assert!(used < 50, "should stop well before the cap, used {used}");
        assert!(stats.iterations.last().unwrap().ever_swapped_fraction >= 0.95);
        assert!(g.is_simple());
    }

    #[test]
    fn swap_until_mixed_simplifies_first() {
        let dist = DegreeDistribution::from_pairs(vec![(1, 80), (2, 30), (20, 4)]).unwrap();
        let mut g = generators::chung_lu_om(&dist, 5);
        if g.is_simple() {
            return; // unlucky fixture; other tests cover the simple path
        }
        let stats = swap_until_mixed(&mut g, 0.9, 60, 9);
        let last = stats.iterations.last().unwrap();
        assert_eq!(last.self_loops + last.multi_edges, 0);
        assert!(g.is_simple());
    }

    #[test]
    fn violations_never_increase() {
        // Simplicity violations are monotonically non-increasing across
        // sweeps: the table rejects any swap that would create a duplicate,
        // and self loops are rejected outright.
        let dist = DegreeDistribution::from_pairs(vec![(1, 60), (2, 30), (30, 4)]).unwrap();
        let mut g = generators::chung_lu_om(&dist, 11);
        let mut cfg = SwapConfig::new(25, 13);
        cfg.track_violations = true;
        let stats = swap_edges(&mut g, &cfg);
        let totals: Vec<u64> = stats
            .iterations
            .iter()
            .map(|it| it.self_loops + it.multi_edges)
            .collect();
        for w in totals.windows(2) {
            assert!(w[1] <= w[0], "violations increased: {totals:?}");
        }
    }

    #[test]
    fn interrupt_checkpoint_resume_is_byte_identical() {
        let budget = MixingBudget::sweeps(12);
        let mut want = ring(300);
        let want_report = try_mix_resumable(
            &mut want,
            StopRule::FixedSweeps,
            &budget,
            21,
            &mut MixControl::none(),
            &mut SwapWorkspace::new(),
            &RecoveryPolicy::default(),
        )
        .expect("reference run");
        assert_eq!(want_report.outcome, MixOutcome::Completed);
        assert!(want_report.checkpoint.is_none());

        // Interrupt after 4 sweeps via a self-raised flag in the sink.
        use std::sync::atomic::AtomicBool;
        let flag = AtomicBool::new(false);
        let mut seen = 0u64;
        let mut sink = |st: &MixState| {
            seen = st.completed_sweeps;
            if st.completed_sweeps >= 4 {
                flag.store(true, Ordering::Release);
            }
            Ok(())
        };
        let mut ctl = MixControl {
            interrupt: Some(&flag),
            policy: Some(CheckpointPolicy::sweeps(1)),
            sink: Some(&mut sink),
        };
        let mut got = ring(300);
        let report = try_mix_resumable(
            &mut got,
            StopRule::FixedSweeps,
            &budget,
            21,
            &mut ctl,
            &mut SwapWorkspace::new(),
            &RecoveryPolicy::default(),
        )
        .expect("interrupted run");
        assert_eq!(report.outcome, MixOutcome::Interrupted);
        let state = report.checkpoint.expect("interrupted runs carry state");
        assert_eq!(state.completed_sweeps, 4);
        assert_eq!(state.sweep_budget, 12);

        let (resumed, final_report) = resume_from(
            &state,
            &budget,
            &mut MixControl::none(),
            &mut SwapWorkspace::new(),
            &RecoveryPolicy::default(),
        )
        .expect("resume");
        assert_eq!(final_report.outcome, MixOutcome::Completed);
        assert_eq!(resumed, want, "resumed graph must be byte-identical");
        assert_eq!(
            final_report.stats.iterations, want_report.stats.iterations,
            "stitched per-sweep stats must match the uninterrupted run"
        );
    }

    #[test]
    fn budget_exhaustion_checkpoint_resumes_to_same_result() {
        let threshold = 0.999;
        let mut want = ring(200);
        let want_stats =
            try_swap_until_mixed(&mut want, threshold, &MixingBudget::sweeps(200), 5).expect("ref");
        let needed = want_stats.iterations.len();
        assert!(needed > 1, "fixture must take several sweeps to mix");

        // Starve the first run, then resume under a sufficient budget.
        let mut got = ring(200);
        let report = try_mix_resumable(
            &mut got,
            StopRule::Threshold(threshold),
            &MixingBudget::sweeps(1),
            5,
            &mut MixControl::none(),
            &mut SwapWorkspace::new(),
            &RecoveryPolicy::default(),
        )
        .expect("starved run still returns a report");
        assert_eq!(report.outcome, MixOutcome::BudgetExhausted);
        assert_eq!(report.budget_error(&MixingBudget::sweeps(1)).exit_code(), 7);
        let state = report.checkpoint.expect("exhausted runs carry state");
        assert_eq!(state.completed_sweeps, 1);
        let (resumed, final_report) = resume_from(
            &state,
            &MixingBudget::sweeps(200),
            &mut MixControl::none(),
            &mut SwapWorkspace::new(),
            &RecoveryPolicy::default(),
        )
        .expect("resume");
        assert_eq!(final_report.outcome, MixOutcome::Completed);
        assert_eq!(resumed, want);
        assert_eq!(final_report.stats.iterations.len(), needed);
    }

    #[test]
    fn resume_rejects_inconsistent_state() {
        let state = MixState {
            num_vertices: 3,
            edges: vec![Edge::new(0, 1), Edge::new(1, 2)],
            swapped: vec![false],
            completed_sweeps: 0,
            seed: 1,
            sweep_budget: 5,
            stop: StopRule::FixedSweeps,
            track_violations: false,
            track_diagnostics: false,
            iterations: Vec::new(),
        };
        let err = resume_from(
            &state,
            &MixingBudget::sweeps(5),
            &mut MixControl::none(),
            &mut SwapWorkspace::new(),
            &RecoveryPolicy::default(),
        )
        .expect_err("flag/edge length mismatch must be rejected");
        assert_eq!(err.error_code(), "bad_input");
    }

    #[test]
    fn resume_past_budget_completes_fixed_sweep_runs_without_work() {
        let mut g = ring(50);
        let report = try_mix_resumable(
            &mut g,
            StopRule::FixedSweeps,
            &MixingBudget::sweeps(3),
            2,
            &mut MixControl::none(),
            &mut SwapWorkspace::new(),
            &RecoveryPolicy::default(),
        )
        .expect("run");
        assert_eq!(report.outcome, MixOutcome::Completed);
        // Re-running a finished trajectory (same absolute cap) is a no-op.
        let mut interrupted = ring(50);
        let int_report = {
            let flag = std::sync::atomic::AtomicBool::new(true);
            let mut ctl = MixControl {
                interrupt: Some(&flag),
                policy: None,
                sink: None,
            };
            try_mix_resumable(
                &mut interrupted,
                StopRule::FixedSweeps,
                &MixingBudget::sweeps(3),
                2,
                &mut ctl,
                &mut SwapWorkspace::new(),
                &RecoveryPolicy::default(),
            )
            .expect("interrupted before the first sweep")
        };
        assert_eq!(int_report.outcome, MixOutcome::Interrupted);
        let state = int_report.checkpoint.expect("state");
        assert_eq!(state.completed_sweeps, 0);
        let (resumed, rep) = resume_from(
            &state,
            &MixingBudget::sweeps(3),
            &mut MixControl::none(),
            &mut SwapWorkspace::new(),
            &RecoveryPolicy::default(),
        )
        .expect("resume");
        assert_eq!(rep.outcome, MixOutcome::Completed);
        assert_eq!(resumed, g);
    }

    #[test]
    fn fault_log_capacity_honored_by_recovery() {
        let cfg = SwapConfig::new(4, 77);
        let mut got = ring(300);
        let mut ws = SwapWorkspace::with_table_capacity(16);
        let policy = RecoveryPolicy {
            event_capacity: 1,
            ..RecoveryPolicy::default()
        };
        let stats = try_swap_edges_with_workspace(&mut got, &cfg, &mut ws, &policy)
            .expect("grow-and-retry should recover");
        assert!(stats.events.len() <= 1);
        assert!(
            stats.events.total_recorded() > stats.events.len() as u64,
            "evictions must be counted, log: {:?}",
            stats.events
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_swaps_preserve_degrees_and_simplicity(
            degs in proptest_lite::collection::vec(0u32..8, 4..40),
            seed in any::<u64>()
        ) {
            let seq = graphcore::DegreeSequence::new(degs);
            prop_assume!(seq.is_graphical());
            let Some(start) = generators::havel_hakimi_sequence(&seq) else {
                unreachable!("graphical sequences always realize");
            };
            let mut g = start;
            swap_edges(&mut g, &SwapConfig::new(3, seed));
            prop_assert!(g.is_simple());
            prop_assert_eq!(g.degree_sequence(), seq);
        }
    }
}
