//! A bounded pool of [`SwapWorkspace`]s for cross-request reuse.
//!
//! The workspace module makes per-*run* reuse explicit: pass the same
//! `&mut SwapWorkspace` to successive runs and the sweep loop allocates
//! nothing in the steady state. A long-running server adds one wrinkle —
//! runs come from many threads, each serving a different job, and tying a
//! workspace to a thread would strand grown buffers on idle threads. The
//! [`WorkspacePool`] instead checks workspaces in and out of a shared,
//! bounded free list: a worker acquires one for the duration of a job
//! segment (an RAII [`PooledWorkspace`] guard), and on drop it returns to
//! the pool unless the pool is already full, in which case it is simply
//! freed.
//!
//! Reuse never affects results: a [`SwapWorkspace`]'s documented invariant
//! is that runs are byte-identical on a fresh or reused workspace, so the
//! pool is a pure allocation-amortization layer (asserted by the
//! `pooled_runs_match_fresh_runs` test).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::SwapWorkspace;

/// A bounded free list of [`SwapWorkspace`]s. Cheap to share
/// (`Arc<WorkspacePool>`); see the module docs.
#[derive(Debug)]
pub struct WorkspacePool {
    free: Mutex<Vec<SwapWorkspace>>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl WorkspacePool {
    /// A pool retaining at most `capacity` idle workspaces. A capacity of
    /// zero is allowed: every acquire builds fresh and every release frees,
    /// which degrades performance but never correctness.
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(Self {
            free: Mutex::new(Vec::with_capacity(capacity)),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    /// Check a workspace out of the pool (reusing an idle one when
    /// available, building fresh otherwise). The guard returns it on drop.
    pub fn acquire(self: &Arc<Self>) -> PooledWorkspace {
        let reused = self
            .free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop();
        let ws = match reused {
            Some(ws) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                ws
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                SwapWorkspace::new()
            }
        };
        PooledWorkspace {
            ws: Some(ws),
            pool: Arc::clone(self),
        }
    }

    /// Idle workspaces currently retained.
    pub fn idle(&self) -> usize {
        self.free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .len()
    }

    /// Acquires served from the free list.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Acquires that had to build a fresh workspace.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    fn release(&self, ws: SwapWorkspace) {
        let mut free = self
            .free
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if free.len() < self.capacity {
            free.push(ws);
        }
        // else: drop — the pool stays bounded even under a worker surge.
    }
}

/// RAII guard over a checked-out [`SwapWorkspace`]; derefs to it and
/// returns it to the pool on drop.
#[derive(Debug)]
pub struct PooledWorkspace {
    ws: Option<SwapWorkspace>,
    pool: Arc<WorkspacePool>,
}

impl std::ops::Deref for PooledWorkspace {
    type Target = SwapWorkspace;

    fn deref(&self) -> &SwapWorkspace {
        self.ws.as_ref().expect("workspace present until drop")
    }
}

impl std::ops::DerefMut for PooledWorkspace {
    fn deref_mut(&mut self) -> &mut SwapWorkspace {
        self.ws.as_mut().expect("workspace present until drop")
    }
}

impl PooledWorkspace {
    /// Drop the workspace instead of returning it to the pool.
    ///
    /// A workspace whose run was interrupted by a caught panic may hold
    /// arbitrarily inconsistent internal state; discarding it guarantees
    /// the poison never reaches a later job through the free list. After
    /// `discard` the guard must not be dereferenced.
    pub fn discard(&mut self) {
        self.ws = None;
    }
}

impl Drop for PooledWorkspace {
    fn drop(&mut self) {
        if let Some(ws) = self.ws.take() {
            self.pool.release(ws);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{swap_edges_with_workspace, SwapConfig};
    use graphcore::EdgeList;

    fn ring(n: u32) -> EdgeList {
        EdgeList::from_pairs((0..n).map(|i| (i, (i + 1) % n)))
    }

    #[test]
    fn pool_reuses_up_to_capacity() {
        let pool = WorkspacePool::new(1);
        {
            let _a = pool.acquire();
            let _b = pool.acquire();
            assert_eq!(pool.misses(), 2);
        }
        // Both dropped; only one retained.
        assert_eq!(pool.idle(), 1);
        let _c = pool.acquire();
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.idle(), 0);
    }

    #[test]
    fn zero_capacity_pool_never_retains() {
        let pool = WorkspacePool::new(0);
        drop(pool.acquire());
        assert_eq!(pool.idle(), 0);
        drop(pool.acquire());
        assert_eq!(pool.hits(), 0);
        assert_eq!(pool.misses(), 2);
    }

    #[test]
    fn discarded_workspace_never_returns_to_the_pool() {
        let pool = WorkspacePool::new(4);
        let mut ws = pool.acquire();
        ws.discard();
        drop(ws);
        assert_eq!(pool.idle(), 0, "discarded workspace must not be pooled");
    }

    #[test]
    fn pooled_runs_match_fresh_runs() {
        let cfg = SwapConfig::new(3, 0xFEED);
        let mut fresh = ring(64);
        swap_edges_with_workspace(&mut fresh, &cfg, &mut SwapWorkspace::new());

        let pool = WorkspacePool::new(2);
        // Warm the pool with a differently-sized run, then reuse.
        {
            let mut ws = pool.acquire();
            let mut warm = ring(200);
            swap_edges_with_workspace(&mut warm, &cfg, &mut ws);
        }
        let mut ws = pool.acquire();
        assert_eq!(pool.hits(), 1);
        let mut reused = ring(64);
        swap_edges_with_workspace(&mut reused, &cfg, &mut ws);
        assert_eq!(fresh.edges(), reused.edges());
    }
}
