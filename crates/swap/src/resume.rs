//! Resumable mixing runs: the state a checkpoint captures and the controls
//! an interruptible run accepts.
//!
//! # Why a sweep index is a complete RNG position
//!
//! Every random decision of a sweep derives from
//! `iter_seed = mix64(seed ^ iter · φ64)` where `iter` is the *absolute*
//! sweep index: the permutation darts, the per-pair partnering bit, the
//! claim ordering. There is no RNG state carried *between* sweeps — the
//! stream position of the run **is** the completed sweep count. Combined
//! with the deterministic min-index-claim acceptance (output independent of
//! the rayon pool size), a run restarted from `(edge list in its current
//! order, per-slot ever-swapped flags, completed sweep count, seed)`
//! replays the exact trajectory an uninterrupted run would have taken:
//! byte-identical final edges, on any thread count.
//!
//! The remaining derived state is reconstructed, not stored:
//!
//! * the `ever_swapped` counter is the number of `true` flags;
//! * the violation counters are re-censused from the restored slots — a
//!   committed swap can only *drain* multiplicities and never creates a
//!   duplicate or a self loop, so the census of the current slots equals
//!   the incrementally-maintained live counters at the moment of the
//!   checkpoint.
//!
//! [`MixState`] is the in-memory form of that state; `crates/ckpt` owns its
//! durable `ckpt_v1` encoding. [`MixControl`] carries the run-time knobs —
//! an interrupt flag drained between sweeps, a [`CheckpointPolicy`], and
//! the sink that persists each snapshot.

use crate::stats::IterationStats;
use crate::workspace::Slot;
use fault::GenError;
use graphcore::Edge;
use parutil::rng::mix64;
use std::sync::atomic::AtomicBool;
use std::time::{Duration, Instant};

/// When a resumable mixing run stops on its own.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum StopRule {
    /// Run exactly the budget's sweep count (a plain `swap_edges`-style
    /// run); completing the budget is success.
    FixedSweeps,
    /// Stop once the ever-swapped fraction reaches the threshold (and, for
    /// non-simple input, every violation is gone); exhausting the budget
    /// first is a failure.
    ///
    /// **Calibration caveat:** the ever-swapped fraction is a *coverage*
    /// proxy, not a convergence criterion — a chain in which nearly every
    /// edge has been rewired once can still be far from uniform over the
    /// realization space (Dutta–Fosdick–Clauset). Prefer
    /// [`StopRule::Converged`] when the stopping point should carry a
    /// statistical guarantee; `crates/stattest/tests/stopping_rules.rs`
    /// demonstrates the threshold rule stopping early and biased on an
    /// adversarial fixture.
    Threshold(f64),
    /// Stop once the online convergence diagnostics say the chain has
    /// mixed: over the trailing `window` sweeps, every informative scalar
    /// observable series (degree-product sum, wedge sketch, ever-swapped
    /// trajectory, acceptance counts) must reach an effective sample size
    /// of at least `min_ess` under the Geyer initial-positive-sequence
    /// autocorrelation estimator (see [`crate::diag`]). For non-simple
    /// input, additionally every violation must be gone. Exhausting the
    /// budget first is a failure.
    Converged {
        /// Minimum effective sample size every informative observable
        /// series must reach within the window.
        min_ess: u32,
        /// Number of trailing sweeps the diagnostics are computed over; the
        /// run cannot stop before `window` sweeps have completed.
        window: u32,
    },
}

/// How often a run hands its state to the checkpoint sink: every N
/// completed sweeps, every T of wall clock, or both (whichever comes
/// first). With neither set, only the final state (on interrupt or budget
/// exhaustion) is captured.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CheckpointPolicy {
    /// Checkpoint after this many sweeps since the last checkpoint.
    pub every_sweeps: Option<u64>,
    /// Checkpoint once this much wall clock passed since the last one.
    pub every_wall: Option<Duration>,
}

impl CheckpointPolicy {
    /// Checkpoint every `n` sweeps.
    pub fn sweeps(n: u64) -> Self {
        Self {
            every_sweeps: Some(n.max(1)),
            every_wall: None,
        }
    }

    /// Checkpoint every `d` of wall clock.
    pub fn wall(d: Duration) -> Self {
        Self {
            every_sweeps: None,
            every_wall: Some(d),
        }
    }

    pub(crate) fn due(&self, sweeps_since: u64, last: Instant) -> bool {
        self.every_sweeps.is_some_and(|n| sweeps_since >= n)
            || self.every_wall.is_some_and(|w| last.elapsed() >= w)
    }
}

/// The complete resumable state of a mixing run, captured between sweeps.
///
/// Everything a continuation needs is here (see the module docs for why
/// this set is sufficient); `ckpt::encode` serializes it verbatim. The
/// edge and flag vectors are in the run's *current permuted slot order* —
/// order is part of the trajectory, not an implementation detail.
#[derive(Clone, Debug, PartialEq)]
pub struct MixState {
    /// Vertex count of the graph being mixed (edges alone lose trailing
    /// isolated vertices).
    pub num_vertices: usize,
    /// The edge list in current slot order.
    pub edges: Vec<Edge>,
    /// Per-slot "ever produced by a successful swap" flags, same order.
    pub swapped: Vec<bool>,
    /// Sweeps fully applied so far — the RNG stream position.
    pub completed_sweeps: u64,
    /// The run's seed.
    pub seed: u64,
    /// Total sweep cap (`MixingBudget::max_sweeps`) active when the state
    /// was captured; a resume may raise it.
    pub sweep_budget: u64,
    /// The stop rule the run was started with.
    pub stop: StopRule,
    /// Whether violation tracking was on (it is derived from the input's
    /// simplicity at start and must not change across a resume).
    pub track_violations: bool,
    /// Whether mixing-diagnostics observables were tracked (derived from
    /// the stop rule at start and, like violation tracking, part of the
    /// trajectory-describing configuration: the per-sweep observable
    /// series must stay gapless across a resume).
    pub track_diagnostics: bool,
    /// Per-sweep statistics accumulated so far, one entry per completed
    /// sweep; a resumed run appends to them so the final stats are
    /// indistinguishable from an uninterrupted run's.
    pub iterations: Vec<IterationStats>,
}

impl MixState {
    /// Hash of the swap configuration this state belongs to. Stored in the
    /// checkpoint and recomputed on load: resuming under a different seed,
    /// stop rule or tracking mode would silently change the trajectory, so
    /// a mismatch is corruption, not a preference.
    pub fn config_hash(&self) -> u64 {
        let (rule_tag, rule_param) = match self.stop {
            StopRule::FixedSweeps => (0u64, 0u64),
            StopRule::Threshold(t) => (1u64, t.to_bits()),
            StopRule::Converged { min_ess, window } => {
                (2u64, (u64::from(min_ess) << 32) | u64::from(window))
            }
        };
        let mut h = mix64(0x636b_7074_5f76_3100 ^ self.seed);
        h = mix64(h ^ rule_tag);
        h = mix64(h ^ rule_param);
        h = mix64(h ^ u64::from(self.track_violations));
        h = mix64(h ^ (u64::from(self.track_diagnostics) << 1));
        h
    }

    /// Structural consistency of the in-memory state (cheap; the durable
    /// format's checksum and field validation live in `crates/ckpt`).
    pub fn validate(&self) -> Result<(), GenError> {
        if self.swapped.len() != self.edges.len() {
            return Err(GenError::bad_input(format!(
                "mix state has {} edges but {} swap flags",
                self.edges.len(),
                self.swapped.len()
            )));
        }
        if self.completed_sweeps != self.iterations.len() as u64 {
            return Err(GenError::bad_input(format!(
                "mix state claims {} completed sweeps but records {} iteration entries",
                self.completed_sweeps,
                self.iterations.len()
            )));
        }
        if let Some(e) = self
            .edges
            .iter()
            .find(|e| e.v() as usize >= self.num_vertices)
        {
            return Err(GenError::bad_input(format!(
                "mix state edge {}-{} exceeds its vertex count {}",
                e.u(),
                e.v(),
                self.num_vertices
            )));
        }
        match self.stop {
            StopRule::Threshold(t) => {
                if !(t.is_finite() && (0.0..=1.0).contains(&t)) {
                    return Err(GenError::bad_input(format!(
                        "mix state threshold {t} outside [0, 1]"
                    )));
                }
            }
            StopRule::Converged { min_ess, window } => {
                if min_ess == 0 || window < 2 {
                    return Err(GenError::bad_input(format!(
                        "mix state converged rule needs min_ess >= 1 and window >= 2, \
                         got min_ess = {min_ess}, window = {window}"
                    )));
                }
                if u64::from(min_ess) > u64::from(window) {
                    return Err(GenError::bad_input(format!(
                        "mix state converged rule min_ess {min_ess} exceeds its window \
                         {window} (an ESS cannot exceed the series length)"
                    )));
                }
            }
            StopRule::FixedSweeps => {}
        }
        Ok(())
    }
}

/// How a resumable run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MixOutcome {
    /// The stop rule was satisfied: threshold reached, or the fixed sweep
    /// budget fully ran.
    Completed,
    /// The interrupt flag was raised; the current sweep was drained and the
    /// state captured.
    Interrupted,
    /// The sweep or wall-clock budget ran out before the stop rule was
    /// satisfied.
    BudgetExhausted,
}

/// Result of a resumable mixing run: the accumulated statistics (prior
/// segments included), how the run ended, and — for any ending other than
/// [`MixOutcome::Completed`] — the state to continue from.
#[derive(Clone, Debug)]
pub struct MixReport {
    /// Per-sweep statistics of the whole logical run so far.
    pub stats: crate::SwapStats,
    /// How the run ended.
    pub outcome: MixOutcome,
    /// Continuation state; `None` exactly when the run completed.
    pub checkpoint: Option<MixState>,
}

impl MixReport {
    /// The typed budget-exhaustion error matching this report, as
    /// [`crate::try_swap_until_mixed`] would raise it.
    pub fn budget_error(&self, budget: &crate::MixingBudget) -> GenError {
        let last = self.stats.iterations.last().copied().unwrap_or_default();
        GenError::MixingBudgetExceeded {
            sweeps_completed: self.stats.iterations.len(),
            max_sweeps: budget.max_sweeps,
            ever_swapped_fraction: last.ever_swapped_fraction,
            self_loops: last.self_loops,
            multi_edges: last.multi_edges,
            wall_clock_exceeded: self.stats.wall_clock_exceeded,
        }
    }
}

/// A checkpoint sink: persists a snapshot, or fails the run trying.
pub type CheckpointSink<'a> = dyn FnMut(&MixState) -> Result<(), GenError> + 'a;

/// Run-time controls for a resumable run. All fields are optional;
/// [`MixControl::none`] runs exactly like the non-resumable entry points.
#[derive(Default)]
pub struct MixControl<'a> {
    /// Checked between sweeps; when it reads `true` the run drains the
    /// sweep in flight, captures its state and returns
    /// [`MixOutcome::Interrupted`]. The flag is process-global state owned
    /// by the *caller* (the CLI's signal handler); library code only reads
    /// it.
    pub interrupt: Option<&'a AtomicBool>,
    /// When to hand intermediate state to the sink.
    pub policy: Option<CheckpointPolicy>,
    /// Persists a snapshot. An `Err` aborts the run and is returned to the
    /// caller (a checkpoint that cannot be written is a hard failure — the
    /// operator asked for durability).
    pub sink: Option<&'a mut CheckpointSink<'a>>,
}

impl MixControl<'_> {
    /// No interruption, no checkpointing.
    pub fn none() -> Self {
        Self::default()
    }
}

/// The per-run constants needed to stamp a [`MixState`] out of live slots.
#[derive(Clone, Copy)]
pub(crate) struct SegmentMeta {
    pub(crate) num_vertices: usize,
    pub(crate) seed: u64,
    pub(crate) sweep_budget: u64,
    pub(crate) stop: StopRule,
    pub(crate) track_violations: bool,
    pub(crate) track_diagnostics: bool,
}

impl SegmentMeta {
    pub(crate) fn state_from_slots(
        &self,
        slots: &[Slot],
        iterations: &[IterationStats],
    ) -> MixState {
        MixState {
            num_vertices: self.num_vertices,
            edges: slots.iter().map(|s| s.edge).collect(),
            swapped: slots.iter().map(|s| s.swapped).collect(),
            completed_sweeps: iterations.len() as u64,
            seed: self.seed,
            sweep_budget: self.sweep_budget,
            stop: self.stop,
            track_violations: self.track_violations,
            track_diagnostics: self.track_diagnostics,
            iterations: iterations.to_vec(),
        }
    }
}

/// Mutable plumbing threaded through `run_until` for a resumable segment:
/// where to start, how to seed the slot flags, what to do between sweeps,
/// and the out-fields the driver reads back. The out-fields are reset at
/// the start of every attempt so grow-and-retry replays stay exact.
pub(crate) struct SegmentCtl<'a, 'b> {
    /// Absolute sweep index to start at (= sweeps already applied).
    pub(crate) start_iter: u64,
    /// Initial per-slot ever-swapped flags (`None` = all false).
    pub(crate) init_swapped: Option<&'a [bool]>,
    /// Per-sweep stats of prior segments, prepended to the run's.
    pub(crate) prior: &'a [IterationStats],
    pub(crate) meta: SegmentMeta,
    pub(crate) interrupt: Option<&'a AtomicBool>,
    pub(crate) policy: Option<CheckpointPolicy>,
    pub(crate) sink: Option<&'a mut CheckpointSink<'b>>,
    /// Out: the interrupt flag was observed and the run stopped for it.
    pub(crate) interrupted: bool,
    /// Out: the sink failed; the run stopped and this error must surface.
    pub(crate) sink_error: Option<GenError>,
    /// Out: state at the end of the run (continuation point).
    pub(crate) final_state: Option<MixState>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> MixState {
        MixState {
            num_vertices: 4,
            edges: vec![Edge::new(0, 1), Edge::new(2, 3)],
            swapped: vec![true, false],
            completed_sweeps: 1,
            seed: 7,
            sweep_budget: 10,
            stop: StopRule::Threshold(0.9),
            track_violations: false,
            track_diagnostics: false,
            iterations: vec![IterationStats::default()],
        }
    }

    #[test]
    fn config_hash_is_sensitive_to_each_config_field() {
        let base = state();
        let mut seed = base.clone();
        seed.seed = 8;
        let mut rule = base.clone();
        rule.stop = StopRule::FixedSweeps;
        let mut thr = base.clone();
        thr.stop = StopRule::Threshold(0.95);
        let mut track = base.clone();
        track.track_violations = true;
        let mut diag = base.clone();
        diag.track_diagnostics = true;
        let mut conv = base.clone();
        conv.stop = StopRule::Converged {
            min_ess: 32,
            window: 64,
        };
        let mut conv_other = base.clone();
        conv_other.stop = StopRule::Converged {
            min_ess: 32,
            window: 128,
        };
        for other in [&seed, &rule, &thr, &track, &diag, &conv, &conv_other] {
            assert_ne!(base.config_hash(), other.config_hash());
        }
        assert_ne!(conv.config_hash(), conv_other.config_hash());
        // ... but not to run-position fields.
        let mut pos = base.clone();
        pos.completed_sweeps = 5;
        pos.sweep_budget = 99;
        assert_eq!(base.config_hash(), pos.config_hash());
    }

    #[test]
    fn validate_rejects_inconsistent_states() {
        assert!(state().validate().is_ok());
        let mut flags = state();
        flags.swapped.pop();
        assert!(flags.validate().is_err());
        let mut sweeps = state();
        sweeps.completed_sweeps = 9;
        assert!(sweeps.validate().is_err());
        let mut verts = state();
        verts.num_vertices = 2;
        assert!(verts.validate().is_err());
        let mut thr = state();
        thr.stop = StopRule::Threshold(f64::NAN);
        assert!(thr.validate().is_err());
        for (min_ess, window) in [(0, 64), (8, 1), (65, 64)] {
            let mut conv = state();
            conv.stop = StopRule::Converged { min_ess, window };
            assert!(
                conv.validate().is_err(),
                "min_ess {min_ess} window {window} must be rejected"
            );
        }
        let mut conv_ok = state();
        conv_ok.stop = StopRule::Converged {
            min_ess: 32,
            window: 64,
        };
        assert!(conv_ok.validate().is_ok());
    }

    #[test]
    fn checkpoint_policy_due() {
        let now = Instant::now();
        assert!(!CheckpointPolicy::default().due(u64::MAX, now));
        assert!(CheckpointPolicy::sweeps(3).due(3, now));
        assert!(!CheckpointPolicy::sweeps(3).due(2, now));
        assert!(CheckpointPolicy::wall(Duration::ZERO).due(0, now));
    }
}
