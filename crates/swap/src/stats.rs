//! Per-iteration statistics and mixing diagnostics for swap runs.

use fault::FaultLog;

/// Statistics for one permute-and-swap iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IterationStats {
    /// Number of adjacent pairs considered (`⌊m / 2⌋`).
    pub attempted_pairs: u64,
    /// Pairs whose swap was accepted.
    pub successful_swaps: u64,
    /// Fraction of edge slots that have been produced by a successful swap
    /// in *any* iteration so far — the paper's empirical mixing criterion is
    /// this fraction reaching ~1.
    pub ever_swapped_fraction: f64,
    /// Remaining self loops (only populated when
    /// [`crate::SwapConfig::track_violations`] is set).
    pub self_loops: u64,
    /// Remaining multi-edge extras (only populated when tracking).
    pub multi_edges: u64,
    /// Degree-product sum `Σ_{(u,v) ∈ E} d(u)·d(v)` over the current edge
    /// list (the unnormalized numerator of degree assortativity; degrees are
    /// swap-invariant, so the sum moves only when edges rewire). Maintained
    /// incrementally in wrapping integer arithmetic and only populated when
    /// [`crate::SwapConfig::track_diagnostics`] is set; 0 otherwise.
    pub deg_product_sum: f64,
    /// Signed wedge sketch `Σ_v W(v)²` where `W(v) = Σ_{u ∈ N(v)} s(u)`
    /// over a seed-derived ±1 vertex hash `s` — a cheap O(changes)-per-swap
    /// proxy for the graph's triangle/wedge structure. Only populated when
    /// [`crate::SwapConfig::track_diagnostics`] is set; 0 otherwise.
    pub wedge_sketch: f64,
}

impl IterationStats {
    /// Acceptance rate of this iteration (0 when no pairs were attempted).
    pub fn acceptance_rate(&self) -> f64 {
        if self.attempted_pairs == 0 {
            0.0
        } else {
            self.successful_swaps as f64 / self.attempted_pairs as f64
        }
    }
}

/// Statistics for a whole swap run.
#[derive(Clone, Debug, Default)]
pub struct SwapStats {
    /// One entry per iteration, in order.
    pub iterations: Vec<IterationStats>,
    /// Recovery actions taken while producing this result (table
    /// grow-and-retry, parallel → serial degradation). Empty for a run that
    /// needed no recovery; a non-empty log means the result is valid but
    /// the run was degraded and the caller's sizing was wrong. The log is a
    /// bounded ring ([`crate::RecoveryPolicy::event_capacity`]); evictions
    /// under a retry storm bump [`FaultLog::dropped_events`].
    pub events: FaultLog,
    /// `true` when the run was cut short by its wall-clock deadline rather
    /// than finishing its sweep budget or meeting its stop criterion.
    pub wall_clock_exceeded: bool,
}

impl SwapStats {
    /// Total accepted swaps over all iterations.
    pub fn total_successful(&self) -> u64 {
        self.iterations.iter().map(|i| i.successful_swaps).sum()
    }

    /// The first iteration (1-based) at which the ever-swapped fraction
    /// reached `threshold`, or `None` if it never did.
    pub fn iterations_to_mix(&self, threshold: f64) -> Option<usize> {
        self.iterations
            .iter()
            .position(|i| i.ever_swapped_fraction >= threshold)
            .map(|i| i + 1)
    }

    /// The first iteration (1-based) after which no simplicity violations
    /// remain; requires violation tracking. `None` if violations remain (or
    /// were never tracked and the run is empty).
    pub fn iterations_to_simple(&self) -> Option<usize> {
        self.iterations
            .iter()
            .position(|i| i.self_loops == 0 && i.multi_edges == 0)
            .map(|i| i + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_rate() {
        let it = IterationStats {
            attempted_pairs: 10,
            successful_swaps: 7,
            ..Default::default()
        };
        assert!((it.acceptance_rate() - 0.7).abs() < 1e-12);
        assert_eq!(IterationStats::default().acceptance_rate(), 0.0);
    }

    #[test]
    fn totals_and_mixing() {
        let stats = SwapStats {
            iterations: vec![
                IterationStats {
                    attempted_pairs: 10,
                    successful_swaps: 4,
                    ever_swapped_fraction: 0.5,
                    self_loops: 2,
                    multi_edges: 1,
                    ..Default::default()
                },
                IterationStats {
                    attempted_pairs: 10,
                    successful_swaps: 5,
                    ever_swapped_fraction: 0.97,
                    self_loops: 0,
                    multi_edges: 0,
                    ..Default::default()
                },
            ],
            ..Default::default()
        };
        assert_eq!(stats.total_successful(), 9);
        assert_eq!(stats.iterations_to_mix(0.95), Some(2));
        assert_eq!(stats.iterations_to_mix(0.99), None);
        assert_eq!(stats.iterations_to_simple(), Some(2));
    }

    #[test]
    fn empty_stats() {
        let s = SwapStats::default();
        assert_eq!(s.total_successful(), 0);
        assert_eq!(s.iterations_to_mix(0.5), None);
        assert_eq!(s.iterations_to_simple(), None);
    }
}
