//! Reusable per-run state for the swap kernel: the zero-allocation sweep
//! loop.
//!
//! Every sweep of the original loop heap-allocated a dart array and a
//! proposal buffer, and cleared two hash tables with full parallel fills
//! over their slot arrays — per-sweep cost proportional to table *capacity*
//! rather than to the work a sweep actually performs. A [`SwapWorkspace`]
//! owns all of that state across sweeps (and across runs): buffers are
//! grown once and reused, and the tables are the epoch-stamped variants
//! whose clear is an O(1) generation bump. In the steady state a sweep
//! performs **no heap allocation** (asserted by
//! `crates/swap/tests/alloc_free.rs`).
//!
//! Pass a workspace explicitly to [`crate::swap_edges_with_workspace`] (or
//! its serial / mixing counterparts) when running many swap batches — an
//! ensemble, a connectivity-retry loop, a statistical harness — so
//! successive runs share one set of buffers. The plain
//! [`crate::swap_edges`] entry points create a fresh workspace internally
//! and remain byte-for-byte equivalent.

use conchash::{EpochHashMap, EpochHashSet, Probe};
use graphcore::Edge;
use parutil::permute::PermuteScratch;

/// An edge plus a flag recording whether it has ever been produced by a
/// successful swap — the paper's empirical mixing criterion is "all edges
/// successfully swapped at least once".
#[derive(Clone, Copy, Debug)]
pub(crate) struct Slot {
    pub(crate) edge: Edge,
    pub(crate) swapped: bool,
}

/// Reusable buffers and tables for swap runs. See the module docs.
///
/// A single workspace may serve runs of different sizes and configurations
/// back to back; buffers grow monotonically and the hash tables are
/// rebuilt only when a run needs more capacity (or a different probing
/// strategy) than they were built with. Results are byte-identical whether
/// a run uses a fresh or a reused workspace.
#[derive(Default)]
pub struct SwapWorkspace {
    /// Working copy of the edge list, permuted in place each sweep.
    pub(crate) slots: Vec<Slot>,
    /// Dart array of the current sweep's permutation.
    pub(crate) darts: Vec<u32>,
    /// Per-pair swap proposals of the current sweep.
    pub(crate) proposals: Vec<Option<(Edge, Edge)>>,
    /// Scratch for the reservation-based parallel shuffle.
    pub(crate) permute: PermuteScratch,
    /// Edge-membership table of the current sweep (epoch-cleared).
    pub(crate) table: Option<EpochHashSet>,
    /// Minimum-index claim map for deterministic conflict resolution
    /// (epoch-cleared).
    pub(crate) claims: Option<EpochHashMap>,
    /// Capacity the tables were created for (they are rebuilt when a run
    /// exceeds it).
    pub(crate) table_capacity: usize,
}

impl SwapWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for graphs of up to `m` edges.
    pub fn with_capacity(m: usize) -> Self {
        let mut ws = Self::new();
        ws.prepare(m, Probe::Linear);
        ws
    }

    /// Grow every buffer and table for a run over `m` edges with the given
    /// probing strategy. Idempotent and cheap when already large enough
    /// (the tables are epoch-cleared, not refilled).
    pub(crate) fn prepare(&mut self, m: usize, probe: Probe) {
        self.darts.resize(m, 0);
        self.proposals.resize(m.div_ceil(2), None);
        self.permute.reserve(m);
        let rebuild = match (&self.table, &self.claims) {
            (Some(t), Some(c)) => {
                m > self.table_capacity || t.probe() != probe || c.probe() != probe
            }
            _ => true,
        };
        if rebuild {
            // The edge table holds exactly the m current edges; the claim
            // map holds at most two replacement keys per pair (= m keys),
            // and at most one key per slot during the violation-tracking
            // registration (= m keys).
            self.table = Some(EpochHashSet::with_probe(m, probe));
            self.claims = Some(EpochHashMap::with_probe(m, probe));
            self.table_capacity = m;
        } else {
            self.table.as_ref().unwrap().clear_shared();
            self.claims.as_ref().unwrap().clear_shared();
        }
    }
}

impl std::fmt::Debug for SwapWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwapWorkspace")
            .field("slot_capacity", &self.slots.capacity())
            .field("table_capacity", &self.table_capacity)
            .finish()
    }
}
