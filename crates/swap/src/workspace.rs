//! Reusable per-run state for the swap kernel: the zero-allocation sweep
//! loop.
//!
//! Every sweep of the original loop heap-allocated a dart array and a
//! proposal buffer, and cleared two hash tables with full parallel fills
//! over their slot arrays — per-sweep cost proportional to table *capacity*
//! rather than to the work a sweep actually performs. A [`SwapWorkspace`]
//! owns all of that state across sweeps (and across runs): buffers are
//! grown once and reused, and the tables are the epoch-stamped variants
//! whose clear is an O(1) generation bump. In the steady state a sweep
//! performs **no heap allocation** (asserted by
//! `crates/swap/tests/alloc_free.rs`).
//!
//! Pass a workspace explicitly to [`crate::swap_edges_with_workspace`] (or
//! its serial / mixing counterparts) when running many swap batches — an
//! ensemble, a connectivity-retry loop, a statistical harness — so
//! successive runs share one set of buffers. The plain
//! [`crate::swap_edges`] entry points create a fresh workspace internally
//! and remain byte-for-byte equivalent.

use conchash::{
    KeyWidth, KeyWidthError, Probe, ResolvedWidth, ShardedEpochHashMap, ShardedEpochHashSet,
    DEFAULT_SHARD_COUNT,
};
use graphcore::Edge;
use parutil::permute::PermuteScratch;
use parutil::ShardScatter;
use std::sync::Arc;

/// An edge plus a flag recording whether it has ever been produced by a
/// successful swap — the paper's empirical mixing criterion is "all edges
/// successfully swapped at least once".
#[derive(Clone, Copy, Debug)]
pub(crate) struct Slot {
    pub(crate) edge: Edge,
    pub(crate) swapped: bool,
}

/// Outcome of proposing a swap for one adjacent pair of the permuted edge
/// list: either the two replacement edges, or the reason the pair must
/// self-transition. Carrying the cause (instead of a bare `None`) lets an
/// attached [`obs::Metrics`] tally rejections by cause with one pass over
/// the proposal buffer — the proposal phase itself stays branch-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Proposal {
    /// The pair may rewire to these two edges (pending the claim phase).
    Accept(Edge, Edge),
    /// Trailing singleton of an odd-length list: no partner to swap with.
    RejectSingleton,
    /// A replacement edge would be a self loop.
    RejectSelfLoop,
    /// Both replacement edges are the same edge.
    RejectDuplicate,
    /// A replacement edge already exists in the current edge set.
    RejectExists,
}

/// Reusable buffers and tables for swap runs. See the module docs.
///
/// A single workspace may serve runs of different sizes and configurations
/// back to back; buffers grow monotonically and the hash tables are
/// rebuilt only when a run needs more capacity (or a different probing
/// strategy) than they were built with. Results are byte-identical whether
/// a run uses a fresh or a reused workspace.
#[derive(Default)]
pub struct SwapWorkspace {
    /// Working copy of the edge list, permuted in place each sweep.
    pub(crate) slots: Vec<Slot>,
    /// Dart array of the current sweep's permutation.
    pub(crate) darts: Vec<u32>,
    /// Per-pair swap proposals of the current sweep.
    pub(crate) proposals: Vec<Proposal>,
    /// Per-pair partner-choice bits of the current sweep, batch-filled
    /// before the proposal phase (`1` = cross pairing).
    pub(crate) sides: Vec<u8>,
    /// Replacement-edge keys of the current sweep's accepted proposals, two
    /// per pair (`EMPTY` for rejected pairs) — the input of the bulk claim
    /// scatter.
    pub(crate) claim_keys: Vec<u64>,
    /// Scratch for partitioning claim records by destination shard.
    pub(crate) scatter: ShardScatter,
    /// Scratch for the reservation-based parallel shuffle.
    pub(crate) permute: PermuteScratch,
    /// Edge-membership table of the current sweep (sharded, epoch-cleared).
    pub(crate) table: Option<ShardedEpochHashSet>,
    /// Minimum-index claim map for deterministic conflict resolution
    /// (sharded, epoch-cleared).
    pub(crate) claims: Option<ShardedEpochHashMap>,
    /// Shard count for the tables; `0` means [`DEFAULT_SHARD_COUNT`].
    /// Sharding never influences swap decisions (the claim reduction is a
    /// commutative minimum), so results are byte-identical across shard
    /// counts.
    pub(crate) shards: usize,
    /// Requested table key width (`--key-width`). Resolved against each
    /// run's vertex count; like sharding, the physical entry layout never
    /// influences swap decisions, so results are byte-identical across
    /// widths.
    pub(crate) key_width: KeyWidth,
    /// Layout the last run resolved to (`None` before any run). `prepare`
    /// rebuilds the tables when the resolution changes.
    pub(crate) resolved_width: Option<ResolvedWidth>,
    /// Capacity the tables were created for (they are rebuilt when a run
    /// exceeds it).
    pub(crate) table_capacity: usize,
    /// When set, tables are built for exactly this many keys instead of the
    /// run's edge count — the fault-injection knob (undersized tables) and
    /// the lever the grow-and-retry policy pulls to recover from them.
    pub(crate) forced_capacity: Option<usize>,
    /// When attached, runs over this workspace tally sweep/proposal/reject
    /// counters and probe lengths into the shared registry. Instrumentation
    /// is read-only: attached or not, runs are byte-identical.
    pub(crate) metrics: Option<Arc<obs::Metrics>>,
}

impl SwapWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A workspace pre-sized for graphs of up to `m` edges.
    pub fn with_capacity(m: usize) -> Self {
        let mut ws = Self::new();
        ws.prepare(m, Probe::Linear);
        ws
    }

    /// A workspace whose hash tables are pinned to exactly `keys` keys,
    /// regardless of the runs' edge counts.
    ///
    /// This is the fault-injection knob: pinning the capacity below a run's
    /// edge count guarantees the sweep's registration phase overflows the
    /// table, exercising the grow-and-retry recovery path (or, when
    /// recovery is disabled, a typed `table_full` error). The pin is
    /// released by [`SwapWorkspace::grow_tables`] doubling it past the need.
    pub fn with_table_capacity(keys: usize) -> Self {
        let mut ws = Self::new();
        ws.forced_capacity = Some(keys);
        ws
    }

    /// A workspace whose tables are split into exactly `shards` shards
    /// (`0` restores the default, [`DEFAULT_SHARD_COUNT`]).
    ///
    /// The shard count is a pure performance lever: claim/commit outcomes
    /// are a commutative minimum per key, so any shard count produces the
    /// same byte-identical result (asserted by `tests/thread_scaling.rs`).
    pub fn with_shards(shards: usize) -> Self {
        let mut ws = Self::new();
        ws.set_shards(shards);
        ws
    }

    /// Change the shard count for subsequent runs; `0` restores the
    /// default. Tables are rebuilt on the next run if the count changed.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards;
    }

    /// A workspace whose tables use the given key width (default
    /// [`KeyWidth::Auto`]: the narrowest packed layout the run's vertex
    /// count fits, wide fallback).
    ///
    /// Like the shard count, the key width is a pure performance lever —
    /// probe sequences are derived from the full 64-bit key under every
    /// layout, so results are byte-identical across widths. A *forced*
    /// packed width that cannot hold a run's vertex ids fails that run
    /// with a typed `bad_input` error rather than truncating.
    pub fn with_key_width(width: KeyWidth) -> Self {
        let mut ws = Self::new();
        ws.set_key_width(width);
        ws
    }

    /// Change the requested key width for subsequent runs. Tables are
    /// rebuilt on the next run if the resolved layout changes.
    pub fn set_key_width(&mut self, width: KeyWidth) {
        self.key_width = width;
    }

    /// The requested key width runs over this workspace use.
    pub fn key_width(&self) -> KeyWidth {
        self.key_width
    }

    /// The physical layout the most recent run resolved to, if any.
    pub fn resolved_key_width(&self) -> Option<ResolvedWidth> {
        self.resolved_width
    }

    /// Resolve the requested width against a run's vertex count and record
    /// the outcome for the next [`SwapWorkspace::prepare`].
    pub(crate) fn resolve_width_for(&mut self, num_vertices: u64) -> Result<(), KeyWidthError> {
        self.resolved_width = Some(conchash::resolve_key_width(self.key_width, num_vertices)?);
        Ok(())
    }

    /// The shard count runs over this workspace use.
    pub fn shard_count(&self) -> usize {
        if self.shards == 0 {
            DEFAULT_SHARD_COUNT
        } else {
            self.shards
        }
    }

    /// Attach (or detach, with `None`) a metrics registry. Subsequent runs
    /// over this workspace count sweeps, proposals, accepts, rejections by
    /// cause, recovery events, and hash-table probe lengths into it.
    pub fn set_metrics(&mut self, metrics: Option<Arc<obs::Metrics>>) {
        self.metrics = metrics;
        let hist = self.metrics.as_ref().map(|m| m.probe_handle());
        if let Some(t) = &mut self.table {
            t.set_probe_histogram(hist.clone());
        }
        if let Some(c) = &mut self.claims {
            c.set_probe_histogram(hist);
        }
    }

    /// The metrics registry currently attached, if any.
    pub fn metrics(&self) -> Option<&Arc<obs::Metrics>> {
        self.metrics.as_ref()
    }

    /// Grow every buffer and table for a run over `m` edges with the given
    /// probing strategy. Idempotent and cheap when already large enough
    /// (the tables are epoch-cleared, not refilled).
    pub(crate) fn prepare(&mut self, m: usize, probe: Probe) {
        let npairs = m / 2;
        self.darts.resize(m, 0);
        self.proposals
            .resize(m.div_ceil(2), Proposal::RejectSingleton);
        self.sides.resize(m.div_ceil(2), 0);
        self.claim_keys.resize(2 * npairs, conchash::EMPTY);
        self.scatter.reserve(2 * npairs, self.shard_count());
        self.permute.reserve(m);
        let want = self.forced_capacity.unwrap_or(m);
        let shards = self.shard_count();
        // Runs that never resolved a width (direct `prepare` callers) get
        // the always-valid wide layout.
        let width = self.resolved_width.unwrap_or(ResolvedWidth::Wide);
        let rebuild = match (&self.table, &self.claims) {
            (Some(t), Some(c)) => {
                let outgrown = match self.forced_capacity {
                    // A pinned capacity is honored exactly (even downward).
                    Some(cap) => cap != self.table_capacity,
                    None => m > self.table_capacity,
                };
                outgrown
                    || t.probe() != probe
                    || c.probe() != probe
                    || t.shard_count() != shards
                    || c.shard_count() != shards
                    || t.resolved_width() != width
                    || c.resolved_width() != width
            }
            _ => true,
        };
        if rebuild {
            // The edge table holds exactly the m current edges; the claim
            // map holds at most two replacement keys per pair (= m keys),
            // and at most one key per slot during the violation-tracking
            // registration (= m keys).
            let hist = self.metrics.as_ref().map(|m| m.probe_handle());
            let mut table = ShardedEpochHashSet::with_shards_width(want, probe, shards, width);
            table.set_probe_histogram(hist.clone());
            let mut claims = ShardedEpochHashMap::with_shards_width(want, probe, shards, width);
            claims.set_probe_histogram(hist);
            self.table = Some(table);
            self.claims = Some(claims);
            self.table_capacity = want;
        } else if let (Some(t), Some(c)) = (&self.table, &self.claims) {
            t.clear_shared();
            c.clear_shared();
        }
    }

    /// Double the table capacity (the grow half of grow-and-retry) and
    /// force a rebuild on the next [`SwapWorkspace::prepare`]. Returns the
    /// new key capacity. Table capacity never influences swap decisions, so
    /// a replayed run over grown tables is byte-identical to a run that was
    /// sized correctly from the start.
    pub(crate) fn grow_tables(&mut self) -> usize {
        let new_cap = self.table_capacity.max(1) * 2;
        self.forced_capacity = Some(new_cap);
        self.table = None;
        self.claims = None;
        new_cap
    }
}

impl std::fmt::Debug for SwapWorkspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SwapWorkspace")
            .field("slot_capacity", &self.slots.capacity())
            .field("table_capacity", &self.table_capacity)
            .finish()
    }
}
