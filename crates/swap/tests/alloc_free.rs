//! Counting-allocator proof that the sweep loop is allocation-free in the
//! steady state: once a [`swap::SwapWorkspace`] has grown to the run size,
//! adding sweeps to a run adds **zero** heap allocations (serial path,
//! strict equality) and at most a small constant per sweep on the parallel
//! path (rayon pool plumbing, if any).

use graphcore::EdgeList;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use swap::{swap_edges_serial_with_workspace, swap_edges_with_workspace};
use swap::{SwapConfig, SwapWorkspace};

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn ring(n: u32) -> EdgeList {
    EdgeList::from_pairs((0..n).map(|i| (i, (i + 1) % n)))
}

fn allocs_during(f: impl FnOnce()) -> u64 {
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    f();
    ALLOC_CALLS.load(Ordering::Relaxed) - before
}

/// The counter is process-global, so concurrently running tests would bleed
/// allocations into each other's measurement windows; every test holds this
/// lock for its whole body.
static MEASURE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// Runs with 5 and 50 sweeps over a warmed workspace must perform the SAME
/// number of allocations (the per-run constant: the returned stats buffer).
/// Any per-sweep allocation would scale with the sweep count and break the
/// equality.
#[test]
fn serial_sweeps_allocate_nothing_in_steady_state() {
    let _serialized = MEASURE_LOCK.lock().unwrap();
    const N: u32 = 2_000;
    let mut ws = SwapWorkspace::new();
    // Warm-up grows every buffer and table to the run size.
    let mut warm = ring(N);
    swap_edges_serial_with_workspace(&mut warm, &SwapConfig::new(2, 1), &mut ws);

    let mut g5 = ring(N);
    let mut g50 = ring(N);
    let a5 = allocs_during(|| {
        swap_edges_serial_with_workspace(&mut g5, &SwapConfig::new(5, 42), &mut ws);
    });
    let a50 = allocs_during(|| {
        swap_edges_serial_with_workspace(&mut g50, &SwapConfig::new(50, 42), &mut ws);
    });
    assert_eq!(
        a5, a50,
        "sweep count changed the allocation count: 5 sweeps -> {a5} allocs, \
         50 sweeps -> {a50} allocs (steady state must be allocation-free)"
    );
    // The per-run constant itself is tiny (stats buffer + iteration vec).
    assert!(a5 <= 4, "per-run allocation constant too high: {a5}");
}

/// Parallel path: identical budget on a sequential pool; on a real
/// multi-thread pool any rayon-internal allocation must stay O(1) per
/// sweep, far below the former per-sweep buffers.
#[test]
fn parallel_sweeps_allocation_bounded() {
    let _serialized = MEASURE_LOCK.lock().unwrap();
    const N: u32 = 2_000;
    let mut ws = SwapWorkspace::new();
    let mut warm = ring(N);
    swap_edges_with_workspace(&mut warm, &SwapConfig::new(2, 1), &mut ws);

    let mut g5 = ring(N);
    let mut g50 = ring(N);
    let a5 = allocs_during(|| {
        swap_edges_with_workspace(&mut g5, &SwapConfig::new(5, 42), &mut ws);
    });
    let a50 = allocs_during(|| {
        swap_edges_with_workspace(&mut g50, &SwapConfig::new(50, 42), &mut ws);
    });
    let per_sweep = (a50.saturating_sub(a5)) as f64 / 45.0;
    assert!(
        per_sweep <= 8.0,
        "parallel path allocates {per_sweep:.1} times per sweep \
         (5 sweeps -> {a5}, 50 sweeps -> {a50})"
    );
}

/// An attached metrics registry must not cost the sweep loop a single
/// allocation: tallies are relaxed atomic adds into pre-existing counters,
/// and the per-sweep cause scan reads the resident proposal buffer. This
/// holds with the `metrics` feature on OR off — disabled, the registry is a
/// set of zero-sized no-ops and the question is moot.
#[test]
fn metrics_attached_sweeps_allocate_nothing_in_steady_state() {
    let _serialized = MEASURE_LOCK.lock().unwrap();
    const N: u32 = 2_000;
    let metrics = std::sync::Arc::new(obs::Metrics::default());
    let mut ws = SwapWorkspace::new();
    ws.set_metrics(Some(metrics.clone()));
    let mut warm = ring(N);
    swap_edges_serial_with_workspace(&mut warm, &SwapConfig::new(2, 1), &mut ws);

    let mut g5 = ring(N);
    let mut g50 = ring(N);
    let a5 = allocs_during(|| {
        swap_edges_serial_with_workspace(&mut g5, &SwapConfig::new(5, 42), &mut ws);
    });
    let a50 = allocs_during(|| {
        swap_edges_serial_with_workspace(&mut g50, &SwapConfig::new(50, 42), &mut ws);
    });
    assert_eq!(
        a5, a50,
        "metrics tallying allocated per sweep: 5 sweeps -> {a5} allocs, \
         50 sweeps -> {a50} allocs"
    );
    assert!(a5 <= 4, "per-run allocation constant too high: {a5}");
    // And the counters were genuinely live while we measured.
    #[cfg(feature = "metrics")]
    assert_eq!(metrics.snapshot().swap_sweeps, 2 + 5 + 50);
}

/// The sharded two-phase sweep keeps the steady state allocation-free at
/// any shard count: the per-shard tables, the claim-key slab, and the
/// scatter scratch are all workspace-resident, so re-sharding moves where
/// keys live but never puts an allocation on the sweep path.
#[test]
fn sharded_sweeps_allocate_nothing_in_steady_state() {
    let _serialized = MEASURE_LOCK.lock().unwrap();
    const N: u32 = 2_000;
    for shards in [1usize, 8, 32] {
        let mut ws = SwapWorkspace::with_shards(shards);
        let mut warm = ring(N);
        swap_edges_serial_with_workspace(&mut warm, &SwapConfig::new(2, 1), &mut ws);

        let mut g5 = ring(N);
        let mut g50 = ring(N);
        let a5 = allocs_during(|| {
            swap_edges_serial_with_workspace(&mut g5, &SwapConfig::new(5, 42), &mut ws);
        });
        let a50 = allocs_during(|| {
            swap_edges_serial_with_workspace(&mut g50, &SwapConfig::new(50, 42), &mut ws);
        });
        assert_eq!(
            a5, a50,
            "{shards} shards: sweep count changed the allocation count \
             (5 sweeps -> {a5}, 50 sweeps -> {a50})"
        );
        assert!(
            a5 <= 4,
            "{shards} shards: per-run allocation constant too high: {a5}"
        );
    }
}

/// Same bound on the parallel two-phase path: the scatter's count/prefix
/// passes and the bulk per-shard claim phase run entirely out of
/// workspace-resident scratch.
#[test]
fn sharded_parallel_sweeps_allocation_bounded() {
    let _serialized = MEASURE_LOCK.lock().unwrap();
    const N: u32 = 2_000;
    let mut ws = SwapWorkspace::with_shards(8);
    let mut warm = ring(N);
    swap_edges_with_workspace(&mut warm, &SwapConfig::new(2, 1), &mut ws);

    let mut g5 = ring(N);
    let mut g50 = ring(N);
    let a5 = allocs_during(|| {
        swap_edges_with_workspace(&mut g5, &SwapConfig::new(5, 42), &mut ws);
    });
    let a50 = allocs_during(|| {
        swap_edges_with_workspace(&mut g50, &SwapConfig::new(50, 42), &mut ws);
    });
    let per_sweep = (a50.saturating_sub(a5)) as f64 / 45.0;
    assert!(
        per_sweep <= 8.0,
        "sharded parallel path allocates {per_sweep:.1} times per sweep \
         (5 sweeps -> {a5}, 50 sweeps -> {a50})"
    );
}

/// Re-sharding an existing workspace rebuilds tables once (on the next
/// prepare), after which sweeps are steady-state allocation-free again.
#[test]
fn reshard_rebuild_is_per_reconfigure_not_per_sweep() {
    let _serialized = MEASURE_LOCK.lock().unwrap();
    const N: u32 = 2_000;
    let mut ws = SwapWorkspace::new();
    let mut warm = ring(N);
    swap_edges_serial_with_workspace(&mut warm, &SwapConfig::new(2, 1), &mut ws);

    // Change the shard count: the very next run pays the rebuild...
    ws.set_shards(4);
    let mut rebuilt = ring(N);
    swap_edges_serial_with_workspace(&mut rebuilt, &SwapConfig::new(2, 1), &mut ws);

    // ...and runs after it are back to the per-run constant.
    let mut g5 = ring(N);
    let mut g50 = ring(N);
    let a5 = allocs_during(|| {
        swap_edges_serial_with_workspace(&mut g5, &SwapConfig::new(5, 42), &mut ws);
    });
    let a50 = allocs_during(|| {
        swap_edges_serial_with_workspace(&mut g50, &SwapConfig::new(50, 42), &mut ws);
    });
    assert_eq!(
        a5, a50,
        "post-reshard sweeps must be allocation-free: \
         5 sweeps -> {a5}, 50 sweeps -> {a50}"
    );
}

/// Violation tracking allocates only its one-time census, not per sweep.
#[test]
fn violation_tracking_census_is_per_run_not_per_sweep() {
    let _serialized = MEASURE_LOCK.lock().unwrap();
    let mut edges: Vec<(u32, u32)> = (0..1000).map(|i| (i, (i + 1) % 1000)).collect();
    edges.push((0, 1));
    edges.push((7, 7));
    let mut ws = SwapWorkspace::new();
    let mut warm = EdgeList::from_pairs(edges.clone());
    let mut cfg = SwapConfig::new(2, 1);
    cfg.track_violations = true;
    swap_edges_serial_with_workspace(&mut warm, &cfg, &mut ws);

    let mut g5 = EdgeList::from_pairs(edges.clone());
    let mut g50 = EdgeList::from_pairs(edges);
    let mut cfg5 = SwapConfig::new(5, 42);
    cfg5.track_violations = true;
    let mut cfg50 = SwapConfig::new(50, 42);
    cfg50.track_violations = true;
    let a5 = allocs_during(|| {
        swap_edges_serial_with_workspace(&mut g5, &cfg5, &mut ws);
    });
    let a50 = allocs_during(|| {
        swap_edges_serial_with_workspace(&mut g50, &cfg50, &mut ws);
    });
    assert_eq!(
        a5, a50,
        "violation tracking must not allocate per sweep: \
         5 sweeps -> {a5}, 50 sweeps -> {a50}"
    );
}

/// Every key-width layout — the packed single-word tables (32- and 64-bit
/// entries) as well as the forced wide fallback — must hold the same
/// steady-state zero-allocation bound. The default `Auto` width already
/// resolves these 2k-vertex rings to the 32-bit packed layout in the tests
/// above; this pins the other layouts explicitly, including the
/// prefetch-batched register/propose/claim/commit loops whose batch
/// buffers are stack arrays, never heap.
#[test]
fn every_key_width_sweeps_allocation_free_in_steady_state() {
    let _serialized = MEASURE_LOCK.lock().unwrap();
    const N: u32 = 2_000;
    use swap::KeyWidth;
    for width in [KeyWidth::W32, KeyWidth::W64, KeyWidth::Wide] {
        let mut ws = SwapWorkspace::with_key_width(width);
        let mut warm = ring(N);
        swap_edges_serial_with_workspace(&mut warm, &SwapConfig::new(2, 1), &mut ws);

        let mut g5 = ring(N);
        let mut g50 = ring(N);
        let a5 = allocs_during(|| {
            swap_edges_serial_with_workspace(&mut g5, &SwapConfig::new(5, 42), &mut ws);
        });
        let a50 = allocs_during(|| {
            swap_edges_serial_with_workspace(&mut g50, &SwapConfig::new(50, 42), &mut ws);
        });
        assert_eq!(
            a5, a50,
            "{width}: sweep count changed the allocation count \
             (5 sweeps -> {a5}, 50 sweeps -> {a50})"
        );
        assert!(
            a5 <= 4,
            "{width}: per-run allocation constant too high: {a5}"
        );
    }
}

/// Switching the key width on a reused workspace rebuilds the tables once
/// (on the next prepare) — like re-sharding, it must never put the rebuild
/// on the per-sweep path.
#[test]
fn key_width_switch_rebuild_is_per_reconfigure_not_per_sweep() {
    let _serialized = MEASURE_LOCK.lock().unwrap();
    const N: u32 = 2_000;
    use swap::KeyWidth;
    let mut ws = SwapWorkspace::new();
    let mut warm = ring(N);
    swap_edges_serial_with_workspace(&mut warm, &SwapConfig::new(2, 1), &mut ws);

    // Force the wide layout: the very next run pays the rebuild...
    ws.set_key_width(KeyWidth::Wide);
    let mut rebuilt = ring(N);
    swap_edges_serial_with_workspace(&mut rebuilt, &SwapConfig::new(2, 1), &mut ws);

    // ...and runs after it are back to the per-run constant.
    let mut g5 = ring(N);
    let mut g50 = ring(N);
    let a5 = allocs_during(|| {
        swap_edges_serial_with_workspace(&mut g5, &SwapConfig::new(5, 42), &mut ws);
    });
    let a50 = allocs_during(|| {
        swap_edges_serial_with_workspace(&mut g50, &SwapConfig::new(50, 42), &mut ws);
    });
    assert_eq!(
        a5, a50,
        "post-width-switch sweeps must be allocation-free: \
         5 sweeps -> {a5}, 50 sweeps -> {a50}"
    );
}
