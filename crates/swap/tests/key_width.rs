//! Key-width equivalence contract: the packed 32- and 64-bit table
//! layouts are pure memory-layout levers. For any graph that fits a
//! width, the sweep's output is byte-identical to the wide (split
//! tag/key/value arrays) reference — across pool sizes, shard counts,
//! and interrupt → checkpoint → resume cuts. Widths a graph does *not*
//! fit are a typed `bad_input` error before the first sweep, never a
//! silent key truncation (`Auto` instead falls back to wider layouts).

use graphcore::{DegreeDistribution, Edge, EdgeList};
use std::sync::atomic::{AtomicBool, Ordering};
use swap::{
    CheckpointPolicy, KeyWidth, MixControl, MixOutcome, MixState, MixingBudget, RecoveryPolicy,
    ResolvedWidth, StopRule, SwapConfig, SwapWorkspace,
};

fn dist() -> DegreeDistribution {
    DegreeDistribution::from_pairs(vec![(1, 400), (2, 160), (3, 60), (7, 16), (15, 4)]).unwrap()
}

/// 640 vertices — fits every width including the 32-bit packed layout.
fn seed_graph() -> EdgeList {
    generators::havel_hakimi(&dist()).unwrap()
}

/// A ring on `n` vertices: the cheapest graph with a controlled vertex
/// count, used to steer the `Auto` width-resolution rule.
fn ring(n: u32) -> EdgeList {
    EdgeList::from_pairs((0..n).map(|i| (i, (i + 1) % n)))
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build pool")
}

fn serialize(graph: &EdgeList) -> Vec<u8> {
    let mut buf = Vec::new();
    graphcore::io::write_edge_list(graph, &mut buf).expect("in-memory write");
    buf
}

#[test]
fn sweep_is_byte_identical_across_key_widths_pools_and_shards() {
    let cfg = SwapConfig::new(8, 0xD1CE);
    let mut reference = seed_graph();
    let ref_stats = {
        let mut ws = SwapWorkspace::with_key_width(KeyWidth::Wide);
        swap::swap_edges_serial_with_workspace(&mut reference, &cfg, &mut ws)
    };
    let want = (serialize(&reference), ref_stats.total_successful());

    for width in [KeyWidth::Auto, KeyWidth::W32, KeyWidth::W64, KeyWidth::Wide] {
        for threads in [1usize, 2, 8] {
            for shards in [1usize, 8] {
                let mut ws = SwapWorkspace::with_shards(shards);
                ws.set_key_width(width);
                let got = pool(threads).install(|| {
                    let mut g = seed_graph();
                    let stats = swap::swap_edges_with_workspace(&mut g, &cfg, &mut ws);
                    (serialize(&g), stats.total_successful())
                });
                assert_eq!(
                    got, want,
                    "width {width} on {threads} threads / {shards} shards \
                     diverged from the wide serial reference"
                );
            }
        }
    }
}

#[test]
fn auto_resolves_the_narrowest_fitting_layout() {
    let cfg = SwapConfig::new(1, 7);

    // 2_000 vertices fit the 32-bit packed layout (n <= 2^13).
    let mut ws = SwapWorkspace::new();
    swap::swap_edges_serial_with_workspace(&mut ring(2_000), &cfg, &mut ws);
    assert!(
        matches!(
            ws.resolved_key_width(),
            Some(ResolvedWidth::Packed32 { .. })
        ),
        "2k vertices must auto-pack to 32-bit entries, got {:?}",
        ws.resolved_key_width()
    );

    // 20_000 vertices overflow Packed32 but fit Packed64 (n <= 2^29).
    swap::swap_edges_serial_with_workspace(&mut ring(20_000), &cfg, &mut ws);
    assert!(
        matches!(
            ws.resolved_key_width(),
            Some(ResolvedWidth::Packed64 { .. })
        ),
        "20k vertices must auto-pack to 64-bit entries, got {:?}",
        ws.resolved_key_width()
    );

    // Forcing wide must actually run the wide layout on a packable graph.
    let mut wide_ws = SwapWorkspace::with_key_width(KeyWidth::Wide);
    swap::swap_edges_serial_with_workspace(&mut ring(2_000), &cfg, &mut wide_ws);
    assert_eq!(wide_ws.resolved_key_width(), Some(ResolvedWidth::Wide));
}

#[test]
fn forced_width_that_does_not_fit_is_a_typed_error_not_truncation() {
    // 20_000 vertices need 15-bit ids: twice that plus the tag overflows a
    // 32-bit word, so forcing --key-width 32 must fail before any sweep.
    let cfg = SwapConfig::new(2, 3);
    let mut graph = ring(20_000);
    let before = serialize(&graph);
    let mut ws = SwapWorkspace::with_key_width(KeyWidth::W32);
    let err =
        swap::try_swap_edges_with_workspace(&mut graph, &cfg, &mut ws, &RecoveryPolicy::default())
            .expect_err("20k vertices cannot fit 32-bit table entries");
    assert_eq!(err.error_code(), "bad_input");
    let msg = err.to_string();
    assert!(
        msg.contains("key width") && msg.contains("20000"),
        "diagnostic must name the width rule and the vertex count: {msg}"
    );
    assert_eq!(
        serialize(&graph),
        before,
        "failed run must not touch the graph"
    );
}

#[test]
fn u32_max_vertex_ids_widen_under_auto_and_reject_forced_packing() {
    // Vertex ids at the u32::MAX boundary (u32::MAX itself is the empty
    // sentinel, so u32::MAX - 1 is the largest legal id): edge keys still
    // fit the wide u64 layout, but 2^32 - 1 vertices leave no room for a
    // packed tag in either packed word. Auto must silently select Wide;
    // forcing a packed width must be the typed error.
    let edges = vec![
        Edge::new(0, u32::MAX - 1),
        Edge::new(1, u32::MAX - 2),
        Edge::new(2, u32::MAX - 3),
        Edge::new(3, u32::MAX - 4),
    ];
    let n = u32::MAX as usize;
    let cfg = SwapConfig::new(2, 11);

    let mut graph = EdgeList::from_edges(n, edges.clone());
    let mut auto_ws = SwapWorkspace::new();
    swap::try_swap_edges_with_workspace(&mut graph, &cfg, &mut auto_ws, &RecoveryPolicy::default())
        .expect("auto width must fall back to the wide layout");
    assert_eq!(auto_ws.resolved_key_width(), Some(ResolvedWidth::Wide));
    assert_eq!(
        graph.len(),
        edges.len(),
        "mixing must preserve the edge count"
    );
    assert!(graph.is_simple());

    for forced in [KeyWidth::W32, KeyWidth::W64] {
        let mut graph = EdgeList::from_edges(n, vec![Edge::new(0, u32::MAX - 1)]);
        let mut ws = SwapWorkspace::with_key_width(forced);
        let err = swap::try_swap_edges_with_workspace(
            &mut graph,
            &cfg,
            &mut ws,
            &RecoveryPolicy::default(),
        )
        .expect_err("2^32 vertices cannot fit a packed layout");
        assert_eq!(
            err.error_code(),
            "bad_input",
            "forced {forced} must fail typed"
        );
    }
}

/// Interrupt a fixed-sweep mixing run after `cut` sweeps and return the
/// captured checkpoint state.
fn interrupt_after(n_sweeps: usize, seed: u64, cut: u64, ws: &mut SwapWorkspace) -> MixState {
    let stop_flag = AtomicBool::new(false);
    let mut seen = 0u64;
    let mut captured: Option<MixState> = None;
    let mut sink = |state: &MixState| {
        seen += 1;
        if seen >= cut {
            stop_flag.store(true, Ordering::Release);
        }
        captured = Some(state.clone());
        Ok(())
    };
    let mut ctl = MixControl {
        interrupt: Some(&stop_flag),
        policy: Some(CheckpointPolicy::sweeps(1)),
        sink: Some(&mut sink),
    };
    let mut graph = seed_graph();
    let report = swap::try_mix_resumable(
        &mut graph,
        StopRule::FixedSweeps,
        &MixingBudget::sweeps(n_sweeps),
        seed,
        &mut ctl,
        ws,
        &RecoveryPolicy::default(),
    )
    .expect("interrupted run");
    assert_eq!(report.outcome, MixOutcome::Interrupted);
    report.checkpoint.expect("interrupted run must checkpoint")
}

#[test]
fn checkpoint_resume_is_byte_identical_across_key_widths() {
    // Cut the run under one key width, resume under another: the
    // checkpoint stores only (edge list, seed, progress), so the table
    // layout on either side of the cut must not matter.
    let (sweeps, seed, cut) = (10usize, 0xFACADE_u64, 3u64);
    let mut ref_graph = seed_graph();
    let ref_report = swap::try_mix_resumable(
        &mut ref_graph,
        StopRule::FixedSweeps,
        &MixingBudget::sweeps(sweeps),
        seed,
        &mut MixControl::none(),
        &mut SwapWorkspace::new(),
        &RecoveryPolicy::default(),
    )
    .expect("reference run");
    assert_eq!(ref_report.outcome, MixOutcome::Completed);
    let ref_bytes = serialize(&ref_graph);

    for (cut_width, resume_width) in [
        (KeyWidth::W64, KeyWidth::W32),
        (KeyWidth::W32, KeyWidth::Wide),
        (KeyWidth::Wide, KeyWidth::Auto),
    ] {
        let state = interrupt_after(
            sweeps,
            seed,
            cut,
            &mut SwapWorkspace::with_key_width(cut_width),
        );
        let (resumed_graph, report) = swap::resume_from(
            &state,
            &MixingBudget::sweeps(sweeps),
            &mut MixControl::none(),
            &mut SwapWorkspace::with_key_width(resume_width),
            &RecoveryPolicy::default(),
        )
        .expect("resume");
        assert_eq!(report.outcome, MixOutcome::Completed);
        assert_eq!(
            serialize(&resumed_graph),
            ref_bytes,
            "cut on {cut_width}, resumed on {resume_width}: bytes diverged"
        );
    }
}
