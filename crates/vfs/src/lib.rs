//! Filesystem abstraction with deterministic storage-fault injection.
//!
//! Every durable write in the pipeline — checkpoints, served samples,
//! 202'd job specs, metrics snapshots — goes through the [`Vfs`] trait
//! instead of calling `std::fs` directly. Production code uses [`RealVfs`]
//! (a zero-cost passthrough); the chaos campaign swaps in a [`FaultVfs`]
//! that injects ENOSPC, EIO, short writes, torn renames, and fsync failures
//! at *scripted or SplitMix64-sampled operation indices*, so every
//! write-side failure mode the CRC layer can only detect after the fact is
//! provoked deterministically and proven survivable before it happens in
//! production.
//!
//! The crate also owns the write-side hardening built on top of the trait:
//!
//! * [`write_atomic`] — the tmp-sibling → fsync → rename → dir-fsync
//!   protocol (atomic-or-absent: the destination is either the previous
//!   complete version or the new complete version, never a prefix);
//! * [`RetryPolicy`] — a bounded, *deterministic* exponential backoff
//!   schedule (seeded jitter, monotone non-decreasing, capped) for
//!   transient faults;
//! * [`write_atomic_retry`] — retry-with-backoff around the atomic
//!   protocol, mapping unrecovered faults to the typed
//!   [`GenError::StorageExhausted`] / [`GenError::StorageIo`] errors
//!   (ENOSPC fast-fails: free space does not reappear on a backoff
//!   timescale).
//!
//! Injected faults and retries are logged as [`fault::FaultEvent`]s into
//! the `FaultVfs`'s bounded [`FaultLog`], surfaced through
//! [`Vfs::fault_stats`] so serve's `/metrics` and the CLI's `--fault-log`
//! sink can report recovered faults that would otherwise be silent.

use fault::{FaultEvent, FaultLog, GenError};
use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// The filesystem operations the pipeline's durable paths perform.
///
/// Implementations must be shareable across threads (serve hands one
/// `Arc<dyn Vfs>` to every worker). `exists` is a pure query and is not a
/// faultable/counted operation; everything else is.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Create (or truncate) `path` and write all of `bytes`.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Flush `path`'s data and metadata to the storage device.
    fn fsync(&self, path: &Path) -> io::Result<()>;
    /// Atomically rename `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Flush a *directory*'s entries to the storage device (durability of
    /// a rename). Callers tolerate failure: some filesystems refuse
    /// directory fsync, and the rename itself is already atomic.
    fn fsync_dir(&self, path: &Path) -> io::Result<()>;
    /// Read the entire file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Remove the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Create `path` and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Whether `path` exists (pure query; never faulted, never counted).
    fn exists(&self, path: &Path) -> bool;
    /// Fault-injection statistics, when this VFS injects faults.
    fn fault_stats(&self) -> Option<FaultStats> {
        None
    }
    /// Record a recovery event (e.g. a retry) into this VFS's fault log.
    /// A no-op for implementations without one.
    fn record(&self, _event: FaultEvent) {}
}

/// The production VFS: a zero-state passthrough to `std::fs`.
#[derive(Clone, Copy, Debug, Default)]
pub struct RealVfs;

impl Vfs for RealVfs {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(bytes)
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn fsync_dir(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// The storage-fault classes a [`FaultVfs`] can inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The device is out of space (`ENOSPC`, raw os error 28). On a write,
    /// a *prefix* of the bytes lands before the error — exactly what a
    /// real full disk does — so only the atomic protocol saves the target.
    Enospc,
    /// A generic I/O error (`EIO`, raw os error 5); nothing is written.
    Eio,
    /// A short write: a prefix of the bytes lands, then `EIO`.
    ShortWrite,
    /// The rename fails and is *not* performed; the tmp sibling remains.
    TornRename,
    /// The data reached the kernel but fsync fails — the bytes may or may
    /// not be durable, and the caller must treat the write as failed.
    FsyncFail,
}

impl FaultKind {
    /// Stable name used in scripts, logs, and `/metrics`.
    pub fn name(self) -> &'static str {
        match self {
            Self::Enospc => "enospc",
            Self::Eio => "eio",
            Self::ShortWrite => "short_write",
            Self::TornRename => "torn_rename",
            Self::FsyncFail => "fsync_fail",
        }
    }

    /// Every kind, in the order used for per-kind counters.
    pub const ALL: [FaultKind; 5] = [
        Self::Enospc,
        Self::Eio,
        Self::ShortWrite,
        Self::TornRename,
        Self::FsyncFail,
    ];

    fn index(self) -> usize {
        match self {
            Self::Enospc => 0,
            Self::Eio => 1,
            Self::ShortWrite => 2,
            Self::TornRename => 3,
            Self::FsyncFail => 4,
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "enospc" => Some(Self::Enospc),
            "eio" => Some(Self::Eio),
            "short" | "short_write" => Some(Self::ShortWrite),
            "torn" | "torn_rename" => Some(Self::TornRename),
            "fsync" | "fsync_fail" => Some(Self::FsyncFail),
            _ => None,
        }
    }

    /// The `io::Error` this kind surfaces as.
    fn error(self) -> io::Error {
        match self {
            Self::Enospc => io::Error::from_raw_os_error(28),
            _ => io::Error::from_raw_os_error(5),
        }
    }
}

/// A snapshot of a fault-injecting VFS's activity, for `/metrics` and for
/// the chaos campaign's op-count discovery pass.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faultable operations performed so far (the op-index space).
    pub ops_total: u64,
    /// Faults actually injected.
    pub injected_total: u64,
    /// Events evicted from the bounded fault log.
    pub dropped_events: u64,
    /// Injected faults per kind, in [`FaultKind::ALL`] order.
    pub by_kind: Vec<(&'static str, u64)>,
}

/// How a [`FaultVfs`] decides which operation indices fault.
#[derive(Clone, Debug)]
enum FaultMode {
    /// Explicit `index → kind` map.
    Scripted(HashMap<u64, FaultKind>),
    /// SplitMix64-sampled: op `i` faults when
    /// `splitmix64(seed ^ i) % 1000 < rate_per_1000`, with the kind drawn
    /// from the same hash. Deterministic for a seed.
    Sampled { seed: u64, rate_per_1000: u64 },
}

/// A deterministic fault-injecting VFS wrapping [`RealVfs`].
///
/// Every faultable operation is assigned a process-wide index from an
/// atomic counter; the mode decides which indices fault and with which
/// [`FaultKind`]. Each injection is logged as a
/// [`FaultEvent::IoFault`] into a bounded [`FaultLog`] and counted
/// per-kind, so no injected fault is ever silent.
#[derive(Debug)]
pub struct FaultVfs {
    inner: RealVfs,
    mode: FaultMode,
    ops: AtomicU64,
    injected: AtomicU64,
    by_kind: [AtomicU64; 5],
    log: Mutex<FaultLog>,
}

impl FaultVfs {
    /// A fault VFS with an explicit `index → kind` script.
    pub fn scripted(script: HashMap<u64, FaultKind>) -> Self {
        Self::with_mode(FaultMode::Scripted(script))
    }

    /// A fault VFS injecting exactly one fault: `kind` at op `index`.
    pub fn single(index: u64, kind: FaultKind) -> Self {
        Self::scripted(HashMap::from([(index, kind)]))
    }

    /// A fault VFS sampling fault sites with SplitMix64: op `i` faults
    /// with probability `rate_per_1000 / 1000`, kind drawn from the same
    /// hash. Deterministic for a seed.
    pub fn sampled(seed: u64, rate_per_1000: u64) -> Self {
        Self::with_mode(FaultMode::Sampled {
            seed,
            rate_per_1000,
        })
    }

    /// Parse a script like `"enospc@12,eio@40,torn@7,eio@0-20"`. Each
    /// comma-separated term is `<kind>@<index>` or `<kind>@<lo>-<hi>`
    /// (inclusive range). Kinds: `enospc`, `eio`, `short`/`short_write`,
    /// `torn`/`torn_rename`, `fsync`/`fsync_fail`. Alternatively the
    /// whole script may be `sampled:SEED:RATE` for the per-mille
    /// SplitMix64 storm mode ([`FaultVfs::sampled`]).
    pub fn from_script_str(s: &str) -> Result<Self, String> {
        // `sampled:SEED:RATE` selects the SplitMix64 storm mode instead of
        // an explicit index script: op i faults with probability RATE/1000.
        if let Some(rest) = s.trim().strip_prefix("sampled:") {
            let (seed_s, rate_s) = rest
                .split_once(':')
                .ok_or_else(|| format!("'sampled:{rest}' needs 'sampled:SEED:RATE'"))?;
            let seed = seed_s
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("bad seed '{seed_s}' in 'sampled:{rest}'"))?;
            let rate = rate_s
                .trim()
                .parse::<u64>()
                .map_err(|_| format!("bad rate '{rate_s}' in 'sampled:{rest}'"))?;
            if rate > 1000 {
                return Err(format!("rate {rate} exceeds 1000 (per-mille)"));
            }
            return Ok(Self::sampled(seed, rate));
        }
        let mut script = HashMap::new();
        for term in s.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (kind_s, at) = term
                .split_once('@')
                .ok_or_else(|| format!("fault term '{term}' missing '@<index>'"))?;
            let kind = FaultKind::parse(kind_s.trim())
                .ok_or_else(|| format!("unknown fault kind '{kind_s}' in '{term}'"))?;
            let at = at.trim();
            let (lo, hi) = match at.split_once('-') {
                Some((lo, hi)) => (
                    lo.parse::<u64>()
                        .map_err(|_| format!("bad index '{lo}' in '{term}'"))?,
                    hi.parse::<u64>()
                        .map_err(|_| format!("bad index '{hi}' in '{term}'"))?,
                ),
                None => {
                    let i = at
                        .parse::<u64>()
                        .map_err(|_| format!("bad index '{at}' in '{term}'"))?;
                    (i, i)
                }
            };
            if hi < lo {
                return Err(format!("empty index range in '{term}'"));
            }
            for i in lo..=hi {
                script.insert(i, kind);
            }
        }
        Ok(Self::scripted(script))
    }

    /// Build a fault VFS from an environment variable holding a script
    /// (see [`FaultVfs::from_script_str`]); `None` when unset or empty.
    pub fn from_env(var: &str) -> Result<Option<Self>, String> {
        match std::env::var(var) {
            Ok(s) if !s.trim().is_empty() => Self::from_script_str(&s).map(Some),
            _ => Ok(None),
        }
    }

    fn with_mode(mode: FaultMode) -> Self {
        Self {
            inner: RealVfs,
            mode,
            ops: AtomicU64::new(0),
            injected: AtomicU64::new(0),
            by_kind: Default::default(),
            log: Mutex::new(FaultLog::new()),
        }
    }

    /// A clone of the fault log (injections and recorded retries).
    pub fn log(&self) -> FaultLog {
        self.log.lock().map(|l| l.clone()).unwrap_or_default()
    }

    /// Claim the next op index and decide whether it faults.
    fn next_fault(&self, op: &'static str, path: &Path) -> Option<FaultKind> {
        let index = self.ops.fetch_add(1, Ordering::Relaxed);
        let kind = match &self.mode {
            FaultMode::Scripted(map) => map.get(&index).copied(),
            FaultMode::Sampled {
                seed,
                rate_per_1000,
            } => {
                let h = splitmix64(seed ^ index);
                (h % 1000 < *rate_per_1000)
                    .then(|| FaultKind::ALL[(h / 1000) as usize % FaultKind::ALL.len()])
            }
        }?;
        self.injected.fetch_add(1, Ordering::Relaxed);
        self.by_kind[kind.index()].fetch_add(1, Ordering::Relaxed);
        if let Ok(mut log) = self.log.lock() {
            log.push(FaultEvent::IoFault {
                op,
                kind: kind.name(),
                path: path.display().to_string(),
                index,
            });
        }
        Some(kind)
    }
}

impl Vfs for FaultVfs {
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.next_fault("write", path) {
            None => self.inner.write(path, bytes),
            // A full disk and a short write both land a *prefix* before
            // erroring — the torn-file shape the atomic protocol exists
            // to mask. Plain EIO writes nothing.
            Some(k @ (FaultKind::Enospc | FaultKind::ShortWrite)) => {
                let _ = self.inner.write(path, &bytes[..bytes.len() / 2]);
                Err(k.error())
            }
            Some(k) => Err(k.error()),
        }
    }

    fn fsync(&self, path: &Path) -> io::Result<()> {
        match self.next_fault("fsync", path) {
            None => self.inner.fsync(path),
            Some(k) => Err(k.error()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.next_fault("rename", to) {
            // A torn/failed rename leaves the tmp sibling in place and the
            // destination untouched; the protocol's cleanup handles it.
            None => self.inner.rename(from, to),
            Some(k) => Err(k.error()),
        }
    }

    fn fsync_dir(&self, path: &Path) -> io::Result<()> {
        match self.next_fault("fsync_dir", path) {
            None => self.inner.fsync_dir(path),
            Some(k) => Err(k.error()),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.next_fault("read", path) {
            None => self.inner.read(path),
            Some(k) => Err(k.error()),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.next_fault("remove_file", path) {
            None => self.inner.remove_file(path),
            Some(k) => Err(k.error()),
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.next_fault("create_dir_all", path) {
            None => self.inner.create_dir_all(path),
            Some(k) => Err(k.error()),
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn fault_stats(&self) -> Option<FaultStats> {
        let log = self.log();
        Some(FaultStats {
            ops_total: self.ops.load(Ordering::Relaxed),
            injected_total: self.injected.load(Ordering::Relaxed),
            dropped_events: log.dropped_events(),
            by_kind: FaultKind::ALL
                .iter()
                .map(|k| (k.name(), self.by_kind[k.index()].load(Ordering::Relaxed)))
                .collect(),
        })
    }

    fn record(&self, event: FaultEvent) {
        if let Ok(mut log) = self.log.lock() {
            log.push(event);
        }
    }
}

/// SplitMix64: the workspace's standard seed-expansion hash.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `true` when `e` is the out-of-space condition (ENOSPC / `StorageFull`),
/// which is never retried.
pub fn is_enospc(e: &io::Error) -> bool {
    e.raw_os_error() == Some(28) || e.kind() == io::ErrorKind::StorageFull
}

/// Classify an unrecovered I/O error into the typed storage [`GenError`]s:
/// ENOSPC → [`GenError::StorageExhausted`], anything else →
/// [`GenError::StorageIo`].
pub fn storage_error(op: &str, path: &Path, e: &io::Error, retries: u32) -> GenError {
    if is_enospc(e) {
        GenError::StorageExhausted {
            op: op.to_string(),
            path: path.display().to_string(),
            retries,
        }
    } else {
        GenError::StorageIo {
            op: op.to_string(),
            path: path.display().to_string(),
            retries,
            reason: e.to_string(),
        }
    }
}

/// Resolve `path` into (parent dir, hidden tmp sibling), mirroring the
/// checkpoint convention: `.{name}.tmp` next to the destination, so a
/// crash leaves at worst one hidden leftover that directory scans ignore.
fn tmp_sibling(path: &Path) -> io::Result<(PathBuf, PathBuf)> {
    let parent = match path.parent() {
        Some(p) if p.as_os_str().is_empty() => PathBuf::from("."),
        Some(p) => p.to_path_buf(),
        None => PathBuf::from("."),
    };
    let name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            "write_atomic target has no file name",
        )
    })?;
    let tmp = parent.join(format!(".{}.tmp", name.to_string_lossy()));
    Ok((parent, tmp))
}

/// Write `bytes` to `path` with the atomic-or-absent protocol: tmp sibling
/// → fsync → rename → parent-dir fsync (failure of the final dir fsync is
/// tolerated — the rename is already atomic; durability of the *entry* may
/// lag by one crash). On any error the tmp sibling is best-effort removed
/// and the destination is untouched.
pub fn write_atomic(fs: &dyn Vfs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let (parent, tmp) = tmp_sibling(path)?;
    let guarded = (|| {
        fs.write(&tmp, bytes)?;
        fs.fsync(&tmp)?;
        fs.rename(&tmp, path)
    })();
    if let Err(e) = guarded {
        let _ = fs.remove_file(&tmp);
        return Err(e);
    }
    let _ = fs.fsync_dir(&parent);
    Ok(())
}

/// A bounded, deterministic exponential-backoff schedule for transient
/// storage faults.
///
/// Attempt `a` (0-based) sleeps `min(base_ms·2^a + jitter_a, cap_ms)` where
/// `jitter_a ∈ [0, base_ms)` is drawn from SplitMix64 over `seed ^ a` —
/// fully reproducible for a seed, monotone non-decreasing in `a` (proved by
/// `base·2^(a+1) ≥ base·2^a + base > base·2^a + jitter_a`), and capped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Base backoff; also the exclusive jitter bound.
    pub base_ms: u64,
    /// Ceiling on any single backoff.
    pub cap_ms: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl RetryPolicy {
    /// The production default: 3 retries, 10ms base, 500ms cap.
    pub fn new(seed: u64) -> Self {
        Self {
            max_retries: 3,
            base_ms: 10,
            cap_ms: 500,
            seed,
        }
    }

    /// No retries: the first failure is final.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            base_ms: 0,
            cap_ms: 0,
            seed: 0,
        }
    }

    /// Full retry count but zero sleep — for tests and chaos campaigns.
    pub fn fast(seed: u64) -> Self {
        Self {
            max_retries: 3,
            base_ms: 0,
            cap_ms: 0,
            seed,
        }
    }

    /// The backoff before 0-based retry `attempt`, in milliseconds.
    pub fn backoff(&self, attempt: u32) -> u64 {
        // Saturating 2^attempt (checked_shl would discard high bits and
        // break monotonicity for absurd attempt counts).
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        let raw = self.base_ms.saturating_mul(factor).min(self.cap_ms);
        if raw >= self.cap_ms || self.base_ms == 0 {
            return raw.min(self.cap_ms);
        }
        let jitter = splitmix64(self.seed ^ u64::from(attempt)) % self.base_ms;
        (raw + jitter).min(self.cap_ms)
    }
}

/// [`write_atomic`] under a bounded deterministic retry policy.
///
/// Transient faults (EIO, short write, fsync failure, torn rename) are
/// retried up to `policy.max_retries` times with [`RetryPolicy::backoff`]
/// sleeps, each retry recorded as a [`FaultEvent::IoRetry`] via
/// [`Vfs::record`]. ENOSPC fast-fails to [`GenError::StorageExhausted`]
/// without retrying. Returns the number of retries spent on success.
pub fn write_atomic_retry(
    fs: &dyn Vfs,
    path: &Path,
    bytes: &[u8],
    policy: &RetryPolicy,
) -> Result<u32, GenError> {
    let mut attempt: u32 = 0;
    loop {
        match write_atomic(fs, path, bytes) {
            Ok(()) => return Ok(attempt),
            Err(e) if is_enospc(&e) => {
                return Err(storage_error("write_atomic", path, &e, attempt))
            }
            Err(e) => {
                if attempt >= policy.max_retries {
                    return Err(storage_error("write_atomic", path, &e, attempt));
                }
                let backoff_ms = policy.backoff(attempt);
                attempt += 1;
                fs.record(FaultEvent::IoRetry {
                    op: "write_atomic",
                    path: path.display().to_string(),
                    attempt,
                    backoff_ms,
                });
                if backoff_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(backoff_ms));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("vfs_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("create test dir");
        d
    }

    #[test]
    fn real_vfs_round_trips() {
        let d = tmp_dir("real");
        let p = d.join("a.txt");
        let fs_ = RealVfs;
        fs_.write(&p, b"hello").unwrap();
        assert!(fs_.exists(&p));
        assert_eq!(fs_.read(&p).unwrap(), b"hello");
        fs_.fsync(&p).unwrap();
        let q = d.join("b.txt");
        fs_.rename(&p, &q).unwrap();
        assert!(!fs_.exists(&p) && fs_.exists(&q));
        fs_.remove_file(&q).unwrap();
        assert!(fs_.fault_stats().is_none());
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn write_atomic_is_atomic_or_absent_under_every_single_fault() {
        for kind in FaultKind::ALL {
            // A generous index sweep: the protocol performs 4 ops.
            for index in 0..4u64 {
                let d = tmp_dir(&format!("atomic_{}_{index}", kind.name()));
                let p = d.join("out.bin");
                let fs_ = FaultVfs::single(index, kind);
                // Seed a previous complete version for rename-overwrite.
                write_atomic(&RealVfs, &p, b"old-version").unwrap();
                let r = write_atomic(&fs_, &p, b"new-version-longer");
                let on_disk = fs::read(&p).unwrap();
                match r {
                    Ok(()) => assert_eq!(on_disk, b"new-version-longer"),
                    Err(_) => assert_eq!(
                        on_disk,
                        b"old-version",
                        "{} at op {index} tore the destination",
                        kind.name()
                    ),
                }
                // No tmp litter regardless of where the fault hit: the
                // failure path best-effort unlinks the sibling (that unlink
                // itself may be the faulted op, in which case one hidden
                // sibling may remain — allowed by the scan convention, but
                // a clean dir-fsync fault must not leave one).
                if r.is_ok() {
                    assert!(!d.join(".out.bin.tmp").exists(), "tmp litter after success");
                }
                let stats = fs_.fault_stats().unwrap();
                assert!(stats.ops_total >= 1);
                let _ = fs::remove_dir_all(&d);
            }
        }
    }

    #[test]
    fn dir_fsync_fault_is_tolerated() {
        let d = tmp_dir("dirfsync");
        let p = d.join("out.bin");
        // Ops: 0 write, 1 fsync, 2 rename, 3 fsync_dir — fault the last.
        let fs_ = FaultVfs::single(3, FaultKind::Eio);
        write_atomic(&fs_, &p, b"payload").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"payload");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn enospc_fast_fails_and_eio_is_retried() {
        let d = tmp_dir("retry");
        let p = d.join("out.bin");
        let policy = RetryPolicy::fast(7);

        let fs_ = FaultVfs::single(0, FaultKind::Enospc);
        let err = write_atomic_retry(&fs_, &p, b"x", &policy).unwrap_err();
        assert_eq!(err.error_code(), "storage_exhausted");
        assert!(matches!(err, GenError::StorageExhausted { retries: 0, .. }));

        // One transient EIO at op 0: the retry recovers and reports it.
        let fs_ = FaultVfs::single(0, FaultKind::Eio);
        let retries = write_atomic_retry(&fs_, &p, b"payload", &policy).unwrap();
        assert_eq!(retries, 1);
        assert_eq!(fs::read(&p).unwrap(), b"payload");
        let log = fs_.log();
        assert!(log
            .iter()
            .any(|e| matches!(e, FaultEvent::IoRetry { attempt: 1, .. })));

        // Dense EIO: every op faults, the budget runs out, typed error.
        let fs_ = FaultVfs::from_script_str("eio@0-63").unwrap();
        let err = write_atomic_retry(&fs_, &p, b"x", &policy).unwrap_err();
        assert_eq!(err.error_code(), "storage_io");
        assert!(matches!(err, GenError::StorageIo { retries: 3, .. }));
        // The failed attempts never touched the previous complete version.
        assert_eq!(fs::read(&p).unwrap(), b"payload");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn script_parsing_accepts_ranges_and_rejects_garbage() {
        let fs_ = FaultVfs::from_script_str("enospc@2, eio@5-7, torn@9").unwrap();
        let stats = fs_.fault_stats().unwrap();
        assert_eq!(stats.injected_total, 0);
        for _ in 0..12 {
            let _ = fs_.fsync_dir(Path::new("/"));
        }
        let stats = fs_.fault_stats().unwrap();
        assert_eq!(stats.ops_total, 12);
        assert_eq!(stats.injected_total, 5);
        let by: HashMap<_, _> = stats.by_kind.iter().copied().collect();
        assert_eq!(by["enospc"], 1);
        assert_eq!(by["eio"], 3);
        assert_eq!(by["torn_rename"], 1);

        assert!(FaultVfs::from_script_str("bogus@1").is_err());
        assert!(FaultVfs::from_script_str("eio@x").is_err());
        assert!(FaultVfs::from_script_str("eio@9-2").is_err());
        assert!(FaultVfs::from_script_str("eio").is_err());
    }

    #[test]
    fn script_parsing_accepts_the_sampled_storm_form() {
        let fs_ = FaultVfs::from_script_str("sampled:42:300").unwrap();
        let faults = (0..200)
            .filter(|_| fs_.fsync_dir(Path::new("/")).is_err())
            .count();
        assert!((20..120).contains(&faults), "rate wildly off: {faults}/200");

        assert!(FaultVfs::from_script_str("sampled:42").is_err());
        assert!(FaultVfs::from_script_str("sampled:x:10").is_err());
        assert!(FaultVfs::from_script_str("sampled:42:1001").is_err());
    }

    #[test]
    fn sampled_mode_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let fs_ = FaultVfs::sampled(seed, 300);
            (0..200)
                .map(|_| fs_.fsync_dir(Path::new("/")).is_err())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds fault different ops");
        let faults = run(42).iter().filter(|&&b| b).count();
        assert!((20..120).contains(&faults), "rate wildly off: {faults}/200");
    }

    #[test]
    fn enospc_detection_matches_raw_os_error() {
        assert!(is_enospc(&io::Error::from_raw_os_error(28)));
        assert!(!is_enospc(&io::Error::from_raw_os_error(5)));
        let e = storage_error(
            "write",
            Path::new("/x"),
            &io::Error::from_raw_os_error(5),
            2,
        );
        assert_eq!(e.error_code(), "storage_io");
    }
}
