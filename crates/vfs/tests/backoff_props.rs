//! Property tests for the deterministic retry-backoff schedule.
//!
//! The schedule is the contract the chaos campaign and serve's member
//! retries lean on: for a fixed seed it must be *reproducible* (two
//! policies with the same parameters sleep identically — retries cannot
//! perturb determinism elsewhere), *monotone non-decreasing* in the
//! attempt number (backoff never shrinks under sustained failure), and
//! *capped* (a retry storm cannot sleep unboundedly).

use proptest_lite::prelude::*;
use vfs::RetryPolicy;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn backoff_is_deterministic_per_seed(
        seed in any::<u64>(),
        base in 1u64..1000,
        cap in 1u64..100_000,
        attempt in 0u32..40,
    ) {
        let a = RetryPolicy { max_retries: 8, base_ms: base, cap_ms: cap, seed };
        let b = RetryPolicy { max_retries: 8, base_ms: base, cap_ms: cap, seed };
        prop_assert_eq!(a.backoff(attempt), b.backoff(attempt));
    }

    #[test]
    fn backoff_is_monotone_non_decreasing(
        seed in any::<u64>(),
        base in 0u64..1000,
        cap in 0u64..100_000,
    ) {
        let p = RetryPolicy { max_retries: 8, base_ms: base, cap_ms: cap, seed };
        let mut prev = p.backoff(0);
        // Far past any sane retry budget, including the shift-overflow zone.
        for attempt in 1..96u32 {
            let cur = p.backoff(attempt);
            prop_assert!(
                cur >= prev,
                "backoff shrank at attempt {}: {} -> {} (base={}, cap={}, seed={})",
                attempt, prev, cur, base, cap, seed
            );
            prev = cur;
        }
    }

    #[test]
    fn backoff_is_capped(
        seed in any::<u64>(),
        base in 0u64..1000,
        cap in 0u64..100_000,
        attempt in 0u32..96,
    ) {
        let p = RetryPolicy { max_retries: 8, base_ms: base, cap_ms: cap, seed };
        prop_assert!(p.backoff(attempt) <= cap);
    }

    #[test]
    fn different_seeds_eventually_jitter_differently(seed in any::<u64>()) {
        // Jitter must actually depend on the seed (not be a constant):
        // two seeds differing in one bit should disagree on at least one
        // pre-cap attempt. Base 100 / huge cap keeps every attempt in the
        // jittered region.
        let a = RetryPolicy { max_retries: 8, base_ms: 100, cap_ms: u64::MAX, seed };
        let b = RetryPolicy { max_retries: 8, base_ms: 100, cap_ms: u64::MAX, seed: seed ^ 1 };
        let differs = (0..32u32).any(|k| a.backoff(k) != b.backoff(k));
        prop_assert!(differs, "jitter ignored the seed ({seed})");
    }
}

#[test]
fn zero_base_never_sleeps() {
    let p = RetryPolicy::fast(1234);
    for attempt in 0..64 {
        assert_eq!(p.backoff(attempt), 0);
    }
    assert_eq!(RetryPolicy::none().max_retries, 0);
}

#[test]
fn production_default_is_bounded_and_exponential() {
    let p = RetryPolicy::new(99);
    assert!(p.backoff(0) >= 10 && p.backoff(0) < 20);
    assert!(p.backoff(1) >= 20 && p.backoff(1) < 30);
    assert_eq!(p.backoff(10), 500, "cap reached and held");
}
