//! Assortativity against the null model — the third application family the
//! paper's introduction cites (after motifs and modularity): a network
//! statistic only means something relative to what randomness produces at
//! the same degree sequence.
//!
//! We build an assortative network (high-degree vertices preferentially
//! linked), then score its assortativity and clustering against the
//! exact-degree-sequence null ensemble.
//!
//! ```text
//! cargo run --release --example assortativity_null
//! ```

use graphcore::analysis::{assortativity, global_clustering};
use graphcore::{Edge, EdgeList};
use nullmodel::{significance_against_null, GeneratorConfig};
use parutil::rng::Xoshiro256pp;

/// Build a deliberately assortative graph: a clique of hubs, rings of
/// leaves, and a few hub-leaf attachments.
fn assortative_fixture() -> EdgeList {
    let mut edges = Vec::new();
    let hubs = 12u32;
    // Hub core: complete graph.
    for a in 0..hubs {
        for b in (a + 1)..hubs {
            edges.push(Edge::new(a, b));
        }
    }
    // Leaf rings hanging off each hub.
    let mut next = hubs;
    let mut rng = Xoshiro256pp::new(7);
    for h in 0..hubs {
        let ring = 8 + (rng.next_below(5)) as u32;
        let start = next;
        for k in 0..ring {
            edges.push(Edge::new(start + k, start + (k + 1) % ring));
        }
        edges.push(Edge::new(h, start));
        next += ring;
    }
    EdgeList::from_edges(next as usize, edges)
}

fn main() {
    let observed = assortative_fixture();
    println!(
        "observed: n = {}, m = {}, simple = {}",
        observed.num_vertices(),
        observed.len(),
        observed.is_simple()
    );

    let cfg = GeneratorConfig::new(99).with_swap_iterations(12);
    let ensemble = 25;

    let assort = significance_against_null(&observed, assortativity, &cfg, ensemble);
    println!(
        "assortativity: observed {:+.4}, null {:+.4} ± {:.4}, z = {:+.1}, p ≈ {:.3}",
        assort.observed, assort.null_mean, assort.null_sd, assort.z_score, assort.p_value
    );

    let clustering = significance_against_null(&observed, global_clustering, &cfg, ensemble);
    println!(
        "clustering:    observed {:.4}, null {:.4} ± {:.4}, z = {:+.1}, p ≈ {:.3}",
        clustering.observed,
        clustering.null_mean,
        clustering.null_sd,
        clustering.z_score,
        clustering.p_value
    );

    if assort.z_score > 2.0 {
        println!("=> the observed assortativity is significantly above the null model");
    }
    if clustering.z_score > 2.0 {
        println!("=> the observed clustering is significantly above the null model");
    }
}
