//! LFR-like community-detection benchmark generation (paper Section VI).
//!
//! Sweeps the mixing parameter μ and reports how well the generated graphs
//! realize the requested community structure and global degree
//! distribution — the harder the μ, the less well-defined the communities.
//!
//! ```text
//! cargo run --release --example community_benchmark
//! ```

use graphcore::DegreeDistribution;
use nullmodel::{generate_lfr, LfrConfig};
use std::time::Instant;

fn main() {
    let distribution = DegreeDistribution::from_pairs(vec![
        (3, 2000),
        (6, 800),
        (12, 250),
        (25, 60),
        (50, 12),
        (100, 2),
    ])
    .expect("valid distribution");

    println!(
        "global distribution: n = {}, m = {}, d_max = {}",
        distribution.num_vertices(),
        distribution.num_edges(),
        distribution.max_degree()
    );
    println!();
    println!(
        "{:>6} {:>10} {:>8} {:>12} {:>10} {:>9}",
        "mu", "measured", "comms", "intra-edges", "m", "time"
    );

    for &mu in &[0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6] {
        let cfg = LfrConfig {
            distribution: distribution.clone(),
            mixing: mu,
            community_size_min: 25,
            community_size_max: 150,
            community_exponent: 1.5,
            swap_iterations: 3,
            seed: 42,
        };
        let t = Instant::now();
        let out = generate_lfr(&cfg).expect("generation succeeds");
        let elapsed = t.elapsed();
        let comms = out.communities.iter().max().map_or(0, |&c| c + 1);
        let intra = out
            .graph
            .edges()
            .iter()
            .filter(|e| out.communities[e.u() as usize] == out.communities[e.v() as usize])
            .count();
        println!(
            "{:>6.2} {:>10.3} {:>8} {:>12} {:>10} {:>8.2}s",
            mu,
            out.measured_mixing,
            comms,
            intra,
            out.graph.len(),
            elapsed.as_secs_f64()
        );
        assert!(out.graph.is_simple());
    }
    println!();
    println!("measured mixing should track the requested mu column.");
}
