//! Generate null models from a real-world-shaped degree distribution and
//! compare all generators' output quality — a miniature of the paper's
//! Fig. 3 experiment on the AS-733-like profile.
//!
//! ```text
//! cargo run --release --example degree_distribution_generation
//! ```

use datasets::Profile;
use graphcore::metrics::DistributionComparison;
use nullmodel::{generate_from_distribution, GeneratorConfig};

fn main() {
    let dist = Profile::As20.distribution(1);
    println!(
        "as20-like target: n = {}, m = {}, d_max = {}, |D| = {}",
        dist.num_vertices(),
        dist.num_edges(),
        dist.max_degree(),
        dist.num_classes()
    );
    println!();
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>8}",
        "generator", "edge err %", "dmax err %", "gini err %", "simple"
    );

    let runs = 5u64;
    let mut rows: Vec<(&str, Vec<DistributionComparison>, bool)> = Vec::new();

    // O(m) Chung-Lu (non-simple).
    let mut cmp = Vec::new();
    let mut simple = true;
    for s in 0..runs {
        let g = generators::chung_lu_om(&dist, s);
        simple &= g.is_simple();
        cmp.push(DistributionComparison::measure(&g, &dist));
    }
    rows.push(("O(m) Chung-Lu", cmp, simple));

    // Erased Chung-Lu.
    let mut cmp = Vec::new();
    for s in 0..runs {
        let (g, _) = generators::erased_chung_lu(&dist, s);
        cmp.push(DistributionComparison::measure(&g, &dist));
    }
    rows.push(("erased Chung-Lu", cmp, true));

    // Bernoulli edge-skip with closed-form probabilities.
    let mut cmp = Vec::new();
    for s in 0..runs {
        let g = generators::bernoulli_edgeskip(&dist, s);
        cmp.push(DistributionComparison::measure(&g, &dist));
    }
    rows.push(("Bernoulli edgeskip", cmp, true));

    // This paper: heuristic probabilities + edge-skipping + swaps.
    let mut cmp = Vec::new();
    for s in 0..runs {
        let g = generate_from_distribution(&dist, &GeneratorConfig::new(s)).graph;
        cmp.push(DistributionComparison::measure(&g, &dist));
    }
    rows.push(("this paper", cmp, true));

    // Extension: with Sinkhorn-refined probabilities.
    let mut cmp = Vec::new();
    for s in 0..runs {
        let g = generate_from_distribution(&dist, &GeneratorConfig::new(s).with_refine_rounds(20))
            .graph;
        cmp.push(DistributionComparison::measure(&g, &dist));
    }
    rows.push(("this paper + refine", cmp, true));

    for (name, samples, simple) in rows {
        let mean = DistributionComparison::mean_abs(&samples);
        println!(
            "{:<22} {:>12.2} {:>12.2} {:>12.2} {:>8}",
            name, mean.edge_count_pct, mean.max_degree_pct, mean.gini_pct, simple
        );
    }
    println!();
    println!("(mean absolute % error over {runs} seeds; lower is better)");
}
