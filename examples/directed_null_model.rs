//! Directed null models — the extension the paper's introduction points to
//! (Durak et al. [14]): generate simple digraphs matching a **joint**
//! in/out degree distribution, then uniformly mix them with directed
//! double-edge swaps.
//!
//! ```text
//! cargo run --release --example directed_null_model
//! ```

use directed::{
    generate_directed_from_distribution, havel_hakimi_directed, swap_directed_edges,
    DiDegreeDistribution, DirectedGeneratorConfig, DirectedSwapConfig,
};

fn main() {
    // A web-like joint distribution: pure sources (crawler seeds), pure
    // sinks (content pages), balanced middle, and a few reciprocal hubs.
    let dist = DiDegreeDistribution::from_pairs(vec![
        ((0, 2), 300),
        ((1, 1), 500),
        ((2, 0), 250),
        ((3, 3), 60),
        ((10, 8), 10),
        ((20, 28), 5),
    ])
    .expect("balanced joint distribution");

    println!(
        "target: n = {}, m = {}, |D| = {} joint classes",
        dist.num_vertices(),
        dist.num_edges(),
        dist.num_classes()
    );

    // Problem 2 (directed): generate from the distribution alone.
    let g = generate_directed_from_distribution(&dist, &DirectedGeneratorConfig::new(7));
    println!(
        "pipeline output: m = {} (target {}), simple = {}",
        g.len(),
        dist.num_edges(),
        g.is_simple()
    );
    let realized = g.joint_distribution();
    println!(
        "realized joint classes: {} (target {})",
        realized.num_classes(),
        dist.num_classes()
    );

    // Problem 1 (directed): mix an existing digraph.
    let seq = dist.expand();
    let mut hh = havel_hakimi_directed(&seq).expect("distribution is realizable");
    let before = hh.joint_degrees();
    let stats = swap_directed_edges(&mut hh, &DirectedSwapConfig::new(10, 99));
    assert_eq!(hh.joint_degrees(), before, "degrees must be preserved");
    assert!(hh.is_simple());
    println!(
        "mixed Havel-Hakimi realization: {} accepted swaps over 10 iterations",
        stats.total()
    );
    println!("per-iteration acceptances: {:?}", stats.successes);
}
