//! Motif finding against a null model — the paper's motivating application
//! (Milo et al., Science 2002).
//!
//! A *motif* is a subgraph that appears significantly more often in a real
//! network than in uniformly-random graphs with the same degree
//! distribution. This example builds a clustered "observed" network,
//! counts its triangles, then generates an ensemble of null graphs from the
//! observed degree distribution and reports the z-score of the triangle
//! count.
//!
//! ```text
//! cargo run --release --example motif_null_model
//! ```

use graphcore::csr::Csr;
use graphcore::DegreeDistribution;
use nullmodel::{generate_from_edge_list, generate_lfr, GeneratorConfig, LfrConfig};

fn main() {
    // 1. Fabricate an "observed" network with real community structure
    //    (LFR with low mixing), which produces many triangles.
    let observed = generate_lfr(&LfrConfig {
        distribution: DegreeDistribution::from_pairs(vec![(4, 700), (8, 250), (16, 50)])
            .expect("valid distribution"),
        mixing: 0.1,
        community_size_min: 15,
        community_size_max: 60,
        community_exponent: 1.5,
        swap_iterations: 3,
        seed: 7,
    })
    .expect("LFR generation succeeds")
    .graph;

    let observed_triangles = Csr::from_edge_list(&observed).triangle_count();
    println!(
        "observed network: n = {}, m = {}, triangles = {}",
        observed.num_vertices(),
        observed.len(),
        observed_triangles
    );

    // 2. Null ensemble: uniformly mix copies of the observed edge list
    //    (problem 1 of the paper) — the degree sequence is preserved
    //    exactly, all structure beyond it is destroyed.
    let ensemble = 20;
    let mut counts = Vec::with_capacity(ensemble);
    for s in 0..ensemble as u64 {
        let mut null = observed.clone();
        generate_from_edge_list(
            &mut null,
            &GeneratorConfig::new(1000 + s).with_swap_iterations(12),
        );
        let t = Csr::from_edge_list(&null).triangle_count();
        counts.push(t as f64);
    }

    let mean = counts.iter().sum::<f64>() / ensemble as f64;
    let var = counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (ensemble - 1) as f64;
    let sd = var.sqrt().max(1e-9);
    let z = (observed_triangles as f64 - mean) / sd;

    println!("null ensemble ({ensemble} graphs): mean triangles = {mean:.1}, sd = {sd:.1}");
    println!("z-score of the observed triangle count: {z:.1}");
    if z > 3.0 {
        println!("=> the triangle is a *motif* of the observed network (z > 3)");
    } else {
        println!("=> no significant triangle enrichment (z <= 3)");
    }
}
