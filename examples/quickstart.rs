//! Quickstart: generate a uniformly-random simple graph from a degree
//! distribution and validate the output.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use graphcore::DegreeDistribution;
use nullmodel::{generate_from_distribution, GeneratorConfig, ValidationReport};

fn main() {
    // A small skewed degree distribution: a heavy low-degree base, a few
    // mid-degree vertices, two hubs.
    let dist = DegreeDistribution::from_pairs(vec![
        (2, 600),
        (3, 250),
        (6, 90),
        (12, 30),
        (24, 10),
        (64, 2),
    ])
    .expect("valid distribution");

    println!(
        "target: n = {}, m = {}, d_max = {}, |D| = {}",
        dist.num_vertices(),
        dist.num_edges(),
        dist.max_degree(),
        dist.num_classes()
    );

    let cfg = GeneratorConfig::new(42).with_swap_iterations(10);
    let out = generate_from_distribution(&dist, &cfg);

    println!(
        "generated: m = {}, simple = {}",
        out.graph.len(),
        out.graph.is_simple()
    );
    println!("phase timings: {}", out.timings);
    println!(
        "probability residual (expected-degree error): {:.3}%",
        100.0 * out.probability_residual
    );
    for (i, it) in out.swap_stats.iterations.iter().enumerate() {
        println!(
            "  swap iter {:>2}: accepted {:>5} / {:>5} pairs, {:.1}% of edges ever swapped",
            i + 1,
            it.successful_swaps,
            it.attempted_pairs,
            100.0 * it.ever_swapped_fraction
        );
    }

    let report = ValidationReport::measure(&out.graph, &dist);
    println!("validation: {report}");
    println!();
    println!("note: per-degree and Gini errors reflect Binomial spread around the");
    println!("target degrees — every expectation-matching generator (including the");
    println!("paper's O(m) baseline) shows it; edge count and d_max are the paper's");
    println!("headline accuracy measures (Fig. 3).");
}
