//! Sequential, API-compatible stand-in for the `rayon` crate.
//!
//! This shim exists so the workspace builds and tests on air-gapped machines
//! with an empty cargo registry cache (see `shims/README.md`). It is **never
//! part of a normal build**: the committed manifests depend on the real
//! `rayon`, and this crate only takes its place when a local, untracked
//! `.cargo/config.toml` adds a `[patch.crates-io]` entry pointing here.
//!
//! Design rules that keep the swap from being observable:
//!
//! * **Identical results.** Every algorithm in the workspace is written to be
//!   deterministic regardless of the rayon pool size (offset-seeded chunks,
//!   commutative reductions, fixed block layouts). A sequential executor is
//!   simply the one-thread member of that family, so outputs are
//!   byte-identical to any real-rayon run.
//! * **Same or stricter bounds.** Adaptor signatures carry the `Send`/`Sync`
//!   bounds real rayon requires, so code that compiles against the shim also
//!   compiles against real rayon — the shim cannot mask a thread-safety
//!   error.
//! * **Same shapes.** `fold`/`reduce` take rayon's two-argument
//!   (identity-factory, op) form, `for_each` takes `Fn` (not `FnMut`), and
//!   thread-pool `install` scopes `current_num_threads` exactly like a real
//!   pool would report it.
//!
//! Only the API surface the workspace actually uses is provided; extending it
//! is preferable to loosening a bound.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

/// A "parallel" iterator: a thin wrapper over a std iterator exposing
/// rayon-shaped adaptors. Not itself `Iterator`, so rayon-named methods never
/// collide with `Iterator` methods in scope.
pub struct Par<I>(I);

impl<I: Iterator> IntoIterator for Par<I> {
    type Item = I::Item;
    type IntoIter = I;
    fn into_iter(self) -> I {
        self.0
    }
}

/// Conversion into a [`Par`] iterator; blanket-implemented for everything
/// `IntoIterator`, which covers all the types real rayon implements its
/// `IntoParallelIterator` for (ranges, vectors, slices, references).
pub trait IntoParallelIterator {
    type SeqIter: Iterator<Item = Self::Item>;
    type Item;
    fn into_par_iter(self) -> Par<Self::SeqIter>;
}

impl<T: IntoIterator> IntoParallelIterator for T {
    type SeqIter = T::IntoIter;
    type Item = T::Item;
    fn into_par_iter(self) -> Par<T::IntoIter> {
        Par(self.into_iter())
    }
}

/// `par_iter()` — borrowing conversion, mirrors rayon's trait of the same
/// name.
pub trait IntoParallelRefIterator<'a> {
    type SeqIter: Iterator<Item = Self::Item>;
    type Item: 'a;
    fn par_iter(&'a self) -> Par<Self::SeqIter>;
}

impl<'a, T: 'a + ?Sized> IntoParallelRefIterator<'a> for T
where
    &'a T: IntoIterator,
{
    type SeqIter = <&'a T as IntoIterator>::IntoIter;
    type Item = <&'a T as IntoIterator>::Item;
    fn par_iter(&'a self) -> Par<Self::SeqIter> {
        Par(self.into_iter())
    }
}

/// `par_iter_mut()` — mutably-borrowing conversion.
pub trait IntoParallelRefMutIterator<'a> {
    type SeqIter: Iterator<Item = Self::Item>;
    type Item: 'a;
    fn par_iter_mut(&'a mut self) -> Par<Self::SeqIter>;
}

impl<'a, T: 'a + ?Sized> IntoParallelRefMutIterator<'a> for T
where
    &'a mut T: IntoIterator,
{
    type SeqIter = <&'a mut T as IntoIterator>::IntoIter;
    type Item = <&'a mut T as IntoIterator>::Item;
    fn par_iter_mut(&'a mut self) -> Par<Self::SeqIter> {
        Par(self.into_iter())
    }
}

/// Chunking/sorting views of shared slices, mirroring rayon's `ParallelSlice`.
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>>;
    fn par_chunks_exact(&self, chunk_size: usize) -> Par<std::slice::ChunksExact<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> Par<std::slice::Chunks<'_, T>> {
        Par(self.chunks(chunk_size))
    }
    fn par_chunks_exact(&self, chunk_size: usize) -> Par<std::slice::ChunksExact<'_, T>> {
        Par(self.chunks_exact(chunk_size))
    }
}

/// Chunking/sorting views of mutable slices, mirroring rayon's
/// `ParallelSliceMut`.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync;
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(chunk_size))
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
    fn par_sort_unstable_by<F>(&mut self, compare: F)
    where
        F: Fn(&T, &T) -> std::cmp::Ordering + Sync,
    {
        self.sort_unstable_by(compare);
    }
    fn par_sort_unstable_by_key<K, F>(&mut self, key: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        self.sort_unstable_by_key(key);
    }
}

impl<I: Iterator> Par<I> {
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }

    pub fn zip<Z: IntoParallelIterator>(self, other: Z) -> Par<std::iter::Zip<I, Z::SeqIter>> {
        Par(self.0.zip(other.into_par_iter().0))
    }

    pub fn map<R, F>(self, f: F) -> Par<std::iter::Map<I, F>>
    where
        F: Fn(I::Item) -> R + Sync + Send,
    {
        Par(self.0.map(f))
    }

    pub fn filter<F>(self, f: F) -> Par<std::iter::Filter<I, F>>
    where
        F: Fn(&I::Item) -> bool + Sync + Send,
    {
        Par(self.0.filter(f))
    }

    pub fn flat_map<U, F>(self, f: F) -> Par<impl Iterator<Item = U::Item>>
    where
        U: IntoParallelIterator,
        F: Fn(I::Item) -> U + Sync + Send,
    {
        Par(self.0.flat_map(move |x| f(x).into_par_iter().0))
    }

    pub fn flatten(self) -> Par<impl Iterator<Item = <I::Item as IntoParallelIterator>::Item>>
    where
        I::Item: IntoParallelIterator,
    {
        Par(self.0.flat_map(|x| x.into_par_iter().0))
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I::Item) + Sync + Send,
    {
        self.0.for_each(|x| f(x));
    }

    pub fn try_for_each<E, F>(mut self, f: F) -> Result<(), E>
    where
        F: Fn(I::Item) -> Result<(), E> + Sync + Send,
        E: Send,
    {
        self.0.try_for_each(|x| f(x))
    }

    /// Rayon-shaped fold: per-"thread" accumulators built by `identity`.
    /// Sequentially there is exactly one accumulator, so this yields a
    /// one-item parallel iterator — compose with `reduce`/`collect`/`flatten`
    /// exactly as with real rayon.
    pub fn fold<A, ID, F>(self, identity: ID, fold_op: F) -> Par<std::iter::Once<A>>
    where
        A: Send,
        ID: Fn() -> A + Sync + Send,
        F: Fn(A, I::Item) -> A + Sync + Send,
    {
        Par(std::iter::once(
            self.0.fold(identity(), |a, x| fold_op(a, x)),
        ))
    }

    /// Rayon-shaped reduce with an identity factory.
    pub fn reduce<ID, F>(self, identity: ID, op: F) -> I::Item
    where
        I::Item: Send,
        ID: Fn() -> I::Item + Sync + Send,
        F: Fn(I::Item, I::Item) -> I::Item + Sync + Send,
    {
        self.0.fold(identity(), |a, b| op(a, b))
    }

    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item> + Send,
    {
        self.0.sum()
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.max()
    }

    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.0.min()
    }

    pub fn all<P>(self, predicate: P) -> bool
    where
        P: Fn(I::Item) -> bool + Sync + Send,
    {
        let mut it = self.0;
        it.all(|x| predicate(x))
    }

    pub fn any<P>(self, predicate: P) -> bool
    where
        P: Fn(I::Item) -> bool + Sync + Send,
    {
        let mut it = self.0;
        it.any(|x| predicate(x))
    }

    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.0.collect()
    }

    /// Granularity hint; meaningless sequentially.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Granularity hint; meaningless sequentially.
    pub fn with_max_len(self, _max: usize) -> Self {
        self
    }
}

impl<'a, T, I> Par<I>
where
    T: 'a + Copy,
    I: Iterator<Item = &'a T>,
{
    pub fn copied(self) -> Par<std::iter::Copied<I>> {
        Par(self.0.copied())
    }
}

impl<'a, T, I> Par<I>
where
    T: 'a + Clone,
    I: Iterator<Item = &'a T>,
{
    pub fn cloned(self) -> Par<std::iter::Cloned<I>> {
        Par(self.0.cloned())
    }
}

/// Run two closures "in parallel" (sequentially here), mirroring
/// `rayon::join`.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (oper_a(), oper_b())
}

// ---------------------------------------------------------------------------
// Thread pools. `install` scopes the advertised thread count exactly like
// entering a real pool would, so `current_num_threads()` reports the same
// values real rayon reports (a pool's configured size is independent of the
// physical core count there too).
// ---------------------------------------------------------------------------

thread_local! {
    static CURRENT_POOL: Cell<usize> = const { Cell::new(0) };
}

static GLOBAL_POOL: AtomicUsize = AtomicUsize::new(0);

/// Advertised size of the pool the caller is "inside".
pub fn current_num_threads() -> usize {
    let scoped = CURRENT_POOL.with(|c| c.get());
    if scoped != 0 {
        return scoped;
    }
    let global = GLOBAL_POOL.load(Ordering::Relaxed);
    if global != 0 {
        global
    } else {
        1
    }
}

/// Error building a thread pool. The sequential shim never fails, but the
/// type exists so `build().unwrap()`-style call sites compile unchanged.
#[derive(Debug)]
pub struct ThreadPoolBuildError {
    _private: (),
}

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build failed")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// `0` means "default", which for the sequential shim is one thread.
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    pub fn stack_size(self, _bytes: usize) -> Self {
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.max(1),
        })
    }

    pub fn build_global(self) -> Result<(), ThreadPoolBuildError> {
        GLOBAL_POOL.store(self.num_threads.max(1), Ordering::Relaxed);
        Ok(())
    }
}

/// Pool handle mirroring `rayon::ThreadPool`; `install` runs the closure on
/// the calling thread with the pool's size advertised.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                CURRENT_POOL.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(CURRENT_POOL.with(|c| c.get()));
        CURRENT_POOL.with(|c| c.set(self.num_threads));
        op()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn adaptors_match_serial_semantics() {
        let v: Vec<u64> = (0..100).collect();
        let doubled: Vec<u64> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, (0..100).map(|x| x * 2).collect::<Vec<_>>());
        let s: u64 = (0..10u64).into_par_iter().sum();
        assert_eq!(s, 45);
        let folded: Vec<u64> = (0..10u64)
            .into_par_iter()
            .fold(Vec::new, |mut a, x| {
                a.push(x);
                a
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        assert_eq!(folded, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn chunks_cover_input_in_order() {
        let mut v = vec![0u32; 10];
        v.par_chunks_mut(3).enumerate().for_each(|(i, c)| {
            for x in c {
                *x = i as u32;
            }
        });
        assert_eq!(v, [0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
    }

    #[test]
    fn install_scopes_advertised_threads() {
        assert_eq!(current_num_threads(), 1);
        let pool = match ThreadPoolBuilder::new().num_threads(8).build() {
            Ok(p) => p,
            Err(e) => panic!("{e}"),
        };
        assert_eq!(pool.current_num_threads(), 8);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 8);
        assert_eq!(current_num_threads(), 1);
    }
}
