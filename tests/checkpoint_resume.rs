//! Crash-consistency contract, end to end: interrupt → `ckpt_v1` round
//! trip → resume must land on the **byte-identical** graph an
//! uninterrupted run produces, on any rayon pool size; corrupt
//! checkpoints must fail typed, never panic, never resume wrong.
//!
//! The CLI-level version of this contract (a real `kill -9` against the
//! spawned `nullgraph` binary) lives in `crates/cli/tests/kill_resume.rs`;
//! this harness exercises the library layers (`swap` + `ckpt`) directly.

use fault::inject;
use graphcore::EdgeList;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use swap::{
    CheckpointPolicy, MixControl, MixOutcome, MixState, MixingBudget, RecoveryPolicy, StopRule,
    SwapWorkspace,
};

fn ring(n: u32) -> EdgeList {
    EdgeList::from_pairs((0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
}

fn serialize(graph: &EdgeList) -> Vec<u8> {
    let mut buf = Vec::new();
    graphcore::io::write_edge_list(graph, &mut buf).expect("in-memory write");
    buf
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("nullgraph_checkpoint_resume");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join(name)
}

/// The uninterrupted reference trajectory for a fixed-sweep run.
fn reference_run(n: u32, sweeps: usize, seed: u64) -> (EdgeList, Vec<swap::IterationStats>) {
    let mut graph = ring(n);
    let report = swap::try_mix_resumable(
        &mut graph,
        StopRule::FixedSweeps,
        &MixingBudget::sweeps(sweeps),
        seed,
        &mut MixControl::none(),
        &mut SwapWorkspace::new(),
        &RecoveryPolicy::default(),
    )
    .expect("reference run");
    assert_eq!(report.outcome, MixOutcome::Completed);
    (graph, report.stats.iterations)
}

/// Interrupt a run after `cut` sweeps and hand back the state as it went
/// through the durable wire format (encode → write_atomic → load).
fn interrupted_state_via_disk(n: u32, sweeps: usize, seed: u64, cut: u64, tag: &str) -> MixState {
    interrupted_state_with_rule(n, StopRule::FixedSweeps, sweeps, seed, cut, tag)
}

/// As [`interrupted_state_via_disk`], under an arbitrary stop rule.
fn interrupted_state_with_rule(
    n: u32,
    stop: StopRule,
    sweeps: usize,
    seed: u64,
    cut: u64,
    tag: &str,
) -> MixState {
    let stop_flag = AtomicBool::new(false);
    let mut seen = 0u64;
    let mut captured: Option<MixState> = None;
    let mut sink = |state: &MixState| {
        seen += 1;
        if seen >= cut {
            stop_flag.store(true, Ordering::Release);
        }
        captured = Some(state.clone());
        Ok(())
    };
    let mut ctl = MixControl {
        interrupt: Some(&stop_flag),
        policy: Some(CheckpointPolicy::sweeps(1)),
        sink: Some(&mut sink),
    };
    let mut graph = ring(n);
    let report = swap::try_mix_resumable(
        &mut graph,
        stop,
        &MixingBudget::sweeps(sweeps),
        seed,
        &mut ctl,
        &mut SwapWorkspace::new(),
        &RecoveryPolicy::default(),
    )
    .expect("interrupted run");
    assert_eq!(report.outcome, MixOutcome::Interrupted);
    let state = report.checkpoint.expect("interrupted run must checkpoint");
    assert_eq!(
        state.completed_sweeps, cut,
        "interrupt drains the sweep in flight"
    );

    // Round-trip through the real file format — the resumed run must see
    // exactly what a post-crash process would read back from disk.
    let path = tmp(&format!("{tag}.ckpt"));
    let snap = ckpt::Snapshot::without_counters(state);
    ckpt::write_atomic(&path, &snap).expect("atomic write");
    let loaded = ckpt::load(&path).expect("load back");
    assert_eq!(loaded, snap, "durable round trip must be lossless");
    loaded.state
}

#[test]
fn interrupt_roundtrip_resume_is_byte_identical_across_pool_sizes() {
    let (n, sweeps, seed, cut) = (240u32, 12usize, 42u64, 4u64);
    let (ref_graph, ref_iters) = reference_run(n, sweeps, seed);
    let ref_bytes = serialize(&ref_graph);

    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build pool");
        let (resumed_graph, report) = pool.install(|| {
            let state = interrupted_state_via_disk(n, sweeps, seed, cut, &format!("pool{threads}"));
            swap::resume_from(
                &state,
                &MixingBudget::sweeps(sweeps),
                &mut MixControl::none(),
                &mut SwapWorkspace::new(),
                &RecoveryPolicy::default(),
            )
            .expect("resume")
        });
        assert_eq!(report.outcome, MixOutcome::Completed, "{threads} threads");
        assert_eq!(
            serialize(&resumed_graph),
            ref_bytes,
            "resumed graph must be byte-identical on {threads} threads"
        );
        assert_eq!(
            report.stats.iterations, ref_iters,
            "stitched per-sweep stats must equal the uninterrupted run's"
        );
    }
}

#[test]
fn converged_rule_resumes_byte_identical_across_pool_sizes() {
    // The adaptive-mixing diagnostics ride in the checkpoint: a run that
    // is interrupted mid-window and resumed on any pool size must make
    // the SAME stopping decision (stop at the same sweep) and land on the
    // byte-identical graph, because the decision is a pure function of the
    // replayed iteration series.
    let (n, seed) = (240u32, 42u64);
    let stop = StopRule::Converged {
        min_ess: 24,
        window: 48,
    };
    let budget = MixingBudget::sweeps(400);

    let mut ref_graph = ring(n);
    let ref_report = swap::try_mix_resumable(
        &mut ref_graph,
        stop,
        &budget,
        seed,
        &mut MixControl::none(),
        &mut SwapWorkspace::new(),
        &RecoveryPolicy::default(),
    )
    .expect("uninterrupted converged run");
    assert_eq!(ref_report.outcome, MixOutcome::Completed);
    let decided_at = ref_report.stats.iterations.len();
    assert!(
        decided_at >= 48,
        "the rule needs a full window before it can fire, stopped at {decided_at}"
    );
    let ref_bytes = serialize(&ref_graph);

    // Cut inside the trailing window, after diagnostics have accumulated.
    let cut = (decided_at / 2) as u64;
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build pool");
        let (resumed_graph, report) = pool.install(|| {
            let state = interrupted_state_with_rule(
                n,
                stop,
                400,
                seed,
                cut,
                &format!("converged_pool{threads}"),
            );
            swap::resume_from(
                &state,
                &budget,
                &mut MixControl::none(),
                &mut SwapWorkspace::new(),
                &RecoveryPolicy::default(),
            )
            .expect("resume")
        });
        assert_eq!(report.outcome, MixOutcome::Completed, "{threads} threads");
        assert_eq!(
            report.stats.iterations.len(),
            decided_at,
            "resumed run must stop at the same sweep on {threads} threads"
        );
        assert_eq!(
            serialize(&resumed_graph),
            ref_bytes,
            "resumed graph must be byte-identical on {threads} threads"
        );
        assert_eq!(
            report.stats.iterations, ref_report.stats.iterations,
            "stitched per-sweep stats (observables included) must match"
        );
    }
}

#[test]
fn budget_exhausted_checkpoint_resumes_through_the_wire_format() {
    let (n, seed, threshold) = (200u32, 7u64, 0.999f64);

    // Uninterrupted threshold run as the reference.
    let mut ref_graph = ring(n);
    let ref_report = swap::try_mix_resumable(
        &mut ref_graph,
        StopRule::Threshold(threshold),
        &MixingBudget::sweeps(400),
        seed,
        &mut MixControl::none(),
        &mut SwapWorkspace::new(),
        &RecoveryPolicy::default(),
    )
    .expect("reference threshold run");
    assert_eq!(ref_report.outcome, MixOutcome::Completed);

    // Starve the same run to one sweep; its checkpoint goes to disk.
    let mut starved_graph = ring(n);
    let starved = swap::try_mix_resumable(
        &mut starved_graph,
        StopRule::Threshold(threshold),
        &MixingBudget::sweeps(1),
        seed,
        &mut MixControl::none(),
        &mut SwapWorkspace::new(),
        &RecoveryPolicy::default(),
    )
    .expect("starved run returns a report");
    assert_eq!(starved.outcome, MixOutcome::BudgetExhausted);
    let path = tmp("budget_exhausted.ckpt");
    ckpt::write_atomic(
        &path,
        &ckpt::Snapshot::without_counters(starved.checkpoint.expect("checkpoint")),
    )
    .expect("write");

    // Resume from disk with a healthy budget: identical destination.
    let loaded = ckpt::load(&path).expect("load");
    let (resumed_graph, resumed) = swap::resume_from(
        &loaded.state,
        &MixingBudget::sweeps(400),
        &mut MixControl::none(),
        &mut SwapWorkspace::new(),
        &RecoveryPolicy::default(),
    )
    .expect("resume");
    assert_eq!(resumed.outcome, MixOutcome::Completed);
    assert_eq!(serialize(&resumed_graph), serialize(&ref_graph));
    assert_eq!(resumed.stats.iterations, ref_report.stats.iterations);
}

#[test]
fn corrupt_checkpoints_reject_typed_and_never_resume_wrong() {
    let state = interrupted_state_via_disk(80, 6, 3, 2, "to_corrupt");
    let bytes = ckpt::codec::encode(&ckpt::Snapshot::without_counters(state));

    // A representative sample across all format regions; the exhaustive
    // every-bit/every-truncation sweep lives in ckpt's format_proptests.
    let cases: Vec<(String, Vec<u8>)> = [0usize, 8 * 8, 8 * 12, 8 * 20, 8 * 24, 8 * 60]
        .iter()
        .map(|&bit| (format!("bit{bit}"), inject::flip_bit(&bytes, bit)))
        .chain(
            [0usize, 10, 23, 24, bytes.len() - 1]
                .iter()
                .map(|&len| (format!("trunc{len}"), inject::truncate_bytes(&bytes, len))),
        )
        .collect();
    for (name, garbled) in cases {
        let err = ckpt::codec::decode(&garbled, &name).expect_err(&name);
        assert_eq!(err.error_code(), "corrupt_checkpoint", "{name}: {err}");
    }

    // A checkpoint whose stored config hash disagrees with its fields
    // must be refused even when its CRC is valid — resuming under a
    // different configuration would silently change the trajectory. Forge
    // one by overwriting the seed field (payload offset 8) and re-fixing
    // the CRC so only the semantic check can catch it.
    let mut forged = bytes.clone();
    let mut seed_field = [0u8; 8];
    seed_field.copy_from_slice(&forged[24 + 8..24 + 16]);
    let forged_seed = u64::from_le_bytes(seed_field) ^ 1;
    forged[24 + 8..24 + 16].copy_from_slice(&forged_seed.to_le_bytes());
    let crc = ckpt::crc32(&forged[24..]);
    forged[20..24].copy_from_slice(&crc.to_le_bytes());
    let err = ckpt::codec::decode(&forged, "forged").expect_err("config-hash mismatch");
    assert_eq!(err.error_code(), "corrupt_checkpoint");
    assert!(
        err.to_string().contains("config hash"),
        "diagnostic names the mismatch: {err}"
    );
}
