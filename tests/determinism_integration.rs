//! Reproducibility guarantees: every public entry point is a pure function
//! of its seed, and the seed-derived parallel streams make results
//! independent of the rayon pool size wherever the design promises it.

use graphcore::DegreeDistribution;
use nullmodel::{generate_from_distribution, generate_lfr, GeneratorConfig, LfrConfig};

fn dist() -> DegreeDistribution {
    DegreeDistribution::from_pairs(vec![(1, 300), (2, 120), (4, 40), (9, 8), (20, 2)]).unwrap()
}

#[test]
fn pipeline_same_seed_same_graph() {
    let a = generate_from_distribution(&dist(), &GeneratorConfig::new(123));
    let b = generate_from_distribution(&dist(), &GeneratorConfig::new(123));
    assert_eq!(a.graph, b.graph);
    assert_eq!(
        a.swap_stats.total_successful(),
        b.swap_stats.total_successful()
    );
}

#[test]
fn pipeline_different_seed_different_graph() {
    let a = generate_from_distribution(&dist(), &GeneratorConfig::new(123));
    let b = generate_from_distribution(&dist(), &GeneratorConfig::new(124));
    assert_ne!(a.graph, b.graph);
}

#[test]
fn edgeskip_independent_of_thread_count() {
    // Edge-skipping derives one stream per deterministic task, so the
    // output must be identical across pool sizes.
    let d = dist();
    let probs = genprob::heuristic_probabilities(&d);
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let quad = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let a = single.install(|| edgeskip::generate(&probs, &d, 9));
    let b = quad.install(|| edgeskip::generate(&probs, &d, 9));
    assert_eq!(a, b);
}

#[test]
fn chung_lu_independent_of_thread_count() {
    let d = dist();
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let quad = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let a = single.install(|| generators::chung_lu_om(&d, 77));
    let b = quad.install(|| generators::chung_lu_om(&d, 77));
    assert_eq!(a, b);
}

#[test]
fn permutation_darts_independent_of_thread_count() {
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let quad = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let a = single.install(|| parutil::permute::darts(100_000, 5));
    let b = quad.install(|| parutil::permute::darts(100_000, 5));
    assert_eq!(a, b);
}

#[test]
fn full_permutation_identical_across_pools() {
    // The reservation algorithm reproduces the serial dart application, so
    // the *result* (not just the darts) is pool-size independent.
    let single = rayon::ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .unwrap();
    let quad = rayon::ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .unwrap();
    let a = single.install(|| parutil::permute::random_permutation(50_000, 31));
    let b = quad.install(|| parutil::permute::random_permutation(50_000, 31));
    assert_eq!(a, b);
}

#[test]
fn swap_chain_identical_across_pools() {
    // The swap chain's minimum-index-claim acceptance makes conflict
    // resolution a pure function of (edge list, seed): the exact same
    // swaps are accepted on any pool size, not just the same degrees.
    let run_on = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let mut g = generators::havel_hakimi(&dist()).unwrap();
            let stats = swap::swap_edges(&mut g, &swap::SwapConfig::new(6, 2024));
            (g, stats.total_successful())
        })
    };
    let (g1, s1) = run_on(1);
    let (g2, s2) = run_on(2);
    let (g8, s8) = run_on(8);
    assert_eq!(g1, g2, "1-thread vs 2-thread edge lists differ");
    assert_eq!(g1, g8, "1-thread vs 8-thread edge lists differ");
    assert_eq!((s1, s2), (s2, s8), "accepted-swap counts differ");
    // And the parallel result equals the serial reference outright.
    let mut serial = generators::havel_hakimi(&dist()).unwrap();
    swap::swap_edges_serial(&mut serial, &swap::SwapConfig::new(6, 2024));
    assert_eq!(g1, serial);
}

#[test]
fn full_pipeline_identical_across_pools() {
    // End-to-end: the whole nullmodel pipeline (probabilities → edge-skip →
    // swap simplification/mixing) emits the identical edge list on 1, 2,
    // and 8 rayon threads for a fixed seed.
    let run_on = |threads: usize| {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| generate_from_distribution(&dist(), &GeneratorConfig::new(123)).graph)
    };
    let g1 = run_on(1);
    let g2 = run_on(2);
    let g8 = run_on(8);
    assert_eq!(g1, g2, "pipeline differs between 1 and 2 threads");
    assert_eq!(g1, g8, "pipeline differs between 1 and 8 threads");
}

#[test]
fn lfr_reproducible() {
    let cfg = LfrConfig {
        distribution: DegreeDistribution::from_pairs(vec![(4, 400), (8, 100)]).unwrap(),
        mixing: 0.3,
        community_size_min: 15,
        community_size_max: 60,
        community_exponent: 1.4,
        swap_iterations: 2,
        seed: 55,
    };
    let a = generate_lfr(&cfg).unwrap();
    let b = generate_lfr(&cfg).unwrap();
    assert_eq!(a.graph, b.graph);
    assert_eq!(a.communities, b.communities);
    assert_eq!(a.measured_mixing, b.measured_mixing);
}

#[test]
fn probability_matrices_are_pure_functions() {
    let d = dist();
    let a = genprob::heuristic_probabilities(&d);
    let b = genprob::heuristic_probabilities(&d);
    for i in 0..d.num_classes() {
        for j in 0..d.num_classes() {
            assert_eq!(a.get(i, j), b.get(i, j));
        }
    }
}
