//! Directed-extension integration: the full directed pipeline on skewed
//! joint distributions, reciprocity null testing, and IO round trips.

use directed::{
    generate_directed_from_distribution, havel_hakimi_directed, io as dio, reciprocity,
    swap_directed_edges, DiDegreeDistribution, DiEdge, DiEdgeList, DirectedGeneratorConfig,
    DirectedSwapConfig,
};

fn skewed_joint() -> DiDegreeDistribution {
    DiDegreeDistribution::from_pairs(vec![
        ((0, 2), 150),
        ((1, 1), 400),
        ((2, 0), 150),
        ((2, 2), 100),
        ((5, 25), 4),
        ((6, 6), 20),
        ((25, 5), 4),
    ])
    .unwrap()
}

#[test]
fn directed_pipeline_matches_in_expectation() {
    let dist = skewed_joint();
    let runs = 6;
    let mut mean_m = 0.0;
    for s in 0..runs {
        let g = generate_directed_from_distribution(&dist, &DirectedGeneratorConfig::new(s));
        assert!(g.is_simple());
        mean_m += g.len() as f64 / runs as f64;
    }
    let target = dist.num_edges() as f64;
    assert!(
        (mean_m - target).abs() / target < 0.08,
        "mean m {mean_m} target {target}"
    );
}

#[test]
fn directed_swaps_preserve_everything_on_realization() {
    let dist = skewed_joint();
    let seq = dist.expand();
    let mut g = havel_hakimi_directed(&seq).expect("realizable");
    let before = g.joint_degrees();
    let stats = swap_directed_edges(&mut g, &DirectedSwapConfig::new(8, 77));
    assert_eq!(g.joint_degrees(), before);
    assert!(g.is_simple());
    assert!(stats.total() > 0);
}

#[test]
fn reciprocity_null_model_workflow() {
    // A network built with deliberate reciprocation scores far above its
    // joint-degree null model.
    let mut edges = Vec::new();
    for i in 0..200u32 {
        let j = (i + 1) % 200;
        edges.push(DiEdge::new(i, j));
        edges.push(DiEdge::new(j, i));
    }
    let observed = DiEdgeList::from_edges(200, edges);
    let observed_recip = reciprocity(&observed);
    assert_eq!(observed_recip, 1.0);

    // Null ensemble: mix copies of the observed digraph.
    let nulls: Vec<f64> = (0..8)
        .map(|s| {
            let mut g = observed.clone();
            swap_directed_edges(&mut g, &DirectedSwapConfig::new(10, 1000 + s));
            reciprocity(&g)
        })
        .collect();
    let null_mean: f64 = nulls.iter().sum::<f64>() / nulls.len() as f64;
    assert!(
        null_mean < 0.2,
        "null reciprocity should collapse, got {null_mean}"
    );
}

#[test]
fn directed_io_round_trip_through_pipeline() {
    let dir = std::env::temp_dir().join("nullgraph_directed_it");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("digraph.txt");

    let dist = skewed_joint();
    let g = generate_directed_from_distribution(&dist, &DirectedGeneratorConfig::new(5));
    dio::save_diedge_list(&g, &path).unwrap();
    let back = dio::load_diedge_list(&path).unwrap();
    assert_eq!(back.edges(), g.edges());
    assert_eq!(back.joint_distribution(), g.joint_distribution());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn antiparallel_edges_survive_simplicity() {
    // Directed simplicity allows antiparallel pairs; the pipeline must not
    // destroy them artificially.
    let dist = DiDegreeDistribution::from_pairs(vec![((2, 2), 40)]).unwrap();
    let g = generate_directed_from_distribution(&dist, &DirectedGeneratorConfig::new(11));
    assert!(g.is_simple());
    let r = reciprocity(&g);
    // Random digraphs at this density have some (small) reciprocity.
    assert!((0.0..=1.0).contains(&r));
}
