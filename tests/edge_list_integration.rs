//! Problem 1 integration: uniformly mixing existing edge lists, including
//! IO round trips and non-simple inputs.

use graphcore::{io, DegreeDistribution, EdgeList};
use nullmodel::{generate_from_edge_list, GeneratorConfig};

fn as20_like() -> DegreeDistribution {
    datasets::Profile::As20.distribution(4)
}

#[test]
fn mixing_preserves_degree_sequence_exactly() {
    let dist = as20_like();
    let mut g = generators::havel_hakimi(&dist).unwrap();
    let before = g.degree_sequence();
    let (stats, _) = generate_from_edge_list(&mut g, &GeneratorConfig::new(1));
    assert_eq!(g.degree_sequence(), before);
    assert!(g.is_simple());
    assert!(stats.total_successful() > 0);
}

#[test]
fn mixing_actually_changes_the_graph() {
    let dist = as20_like();
    let original = generators::havel_hakimi(&dist).unwrap();
    let mut g = original.clone();
    generate_from_edge_list(&mut g, &GeneratorConfig::new(2));
    assert_ne!(g, original, "ten swap iterations must rewire something");
}

#[test]
fn multigraph_input_gets_simplified() {
    // The paper: O(m) Chung-Lu output + "about two dozen" swap iterations
    // eliminates all multi-edges.
    let dist = as20_like();
    let mut g = generators::chung_lu_om(&dist, 7);
    assert!(!g.is_simple(), "fixture should start non-simple");
    let cfg = GeneratorConfig {
        swap_iterations: 30,
        seed: 8,
        refine_rounds: 0,
        refine_tolerance: None,
        track_violations: true,
        metrics: None,
        swap_shards: None,
        key_width: nullmodel::KeyWidth::Auto,
        track_swap_diagnostics: false,
    };
    let (stats, _) = generate_from_edge_list(&mut g, &cfg);
    assert!(g.is_simple(), "not simplified after 30 iterations");
    let when = stats.iterations_to_simple().expect("tracked");
    assert!(when <= 30, "took {when} iterations");
}

#[test]
fn configuration_model_input() {
    let dist = as20_like();
    let mut g = generators::configuration_model(&dist, 12);
    let degrees = g.degree_sequence();
    generate_from_edge_list(&mut g, &GeneratorConfig::new(3).with_swap_iterations(25));
    assert_eq!(g.degree_sequence(), degrees);
    assert!(g.is_simple());
}

#[test]
fn io_round_trip_then_mix() {
    let dir = std::env::temp_dir().join("nullgraph_test_io");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("edges.txt");

    let dist = DegreeDistribution::from_pairs(vec![(2, 40), (4, 10)]).unwrap();
    let g = generators::havel_hakimi(&dist).unwrap();
    io::save_edge_list(&g, &path).unwrap();
    let mut loaded = io::load_edge_list(&path).unwrap();
    assert_eq!(loaded.len(), g.len());

    generate_from_edge_list(&mut loaded, &GeneratorConfig::new(4));
    assert!(loaded.is_simple());
    assert_eq!(loaded.degree_distribution(), dist);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn mixing_changes_attachment_statistics_toward_uniform() {
    // Havel-Hakimi output is highly structured (assortative by
    // construction); swapping must move its attachment matrix toward the
    // uniform sample's.
    use graphcore::metrics::AttachmentMatrix;
    let dist = datasets::Profile::Meso.distribution(2);
    let reference = {
        let mats: Vec<AttachmentMatrix> = (0..6)
            .map(|s| {
                let g = nullmodel::uniform_reference(&dist, 20, 1000 + s).unwrap();
                AttachmentMatrix::from_graph(&g)
            })
            .collect();
        AttachmentMatrix::average(&mats)
    };
    let hh = generators::havel_hakimi(&dist).unwrap();
    let before = AttachmentMatrix::from_graph(&hh).l1_diff(&reference);
    let mut mixed = hh.clone();
    generate_from_edge_list(
        &mut mixed,
        &GeneratorConfig::new(5).with_swap_iterations(15),
    );
    let after = AttachmentMatrix::from_graph(&mixed).l1_diff(&reference);
    assert!(
        after < before,
        "mixing did not approach uniform: {before} -> {after}"
    );
}

#[test]
fn empty_and_tiny_inputs() {
    let mut empty = EdgeList::new(10);
    let (stats, _) = generate_from_edge_list(&mut empty, &GeneratorConfig::new(1));
    assert_eq!(stats.total_successful(), 0);

    let mut single = EdgeList::from_pairs([(0, 1)]);
    generate_from_edge_list(&mut single, &GeneratorConfig::new(1));
    assert_eq!(single.len(), 1);
}
