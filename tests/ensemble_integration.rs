//! Ensemble and significance workflows across crates: the applications the
//! paper's introduction motivates, end to end.

use datasets::Profile;
use graphcore::analysis::{assortativity, global_clustering};
use graphcore::csr::Csr;
use nullmodel::{
    ensemble_from_distribution, significance_against_null, GeneratorConfig, SignificanceReport,
};

#[test]
fn profile_ensemble_statistics_stable() {
    let dist = Profile::Meso.distribution(2);
    let graphs = ensemble_from_distribution(&dist, &GeneratorConfig::new(4), 6);
    assert_eq!(graphs.len(), 6);
    // Edge counts concentrate around the target.
    let target = dist.num_edges() as f64;
    let mean: f64 = graphs.iter().map(|g| g.len() as f64).sum::<f64>() / 6.0;
    assert!((mean - target).abs() / target < 0.06, "mean {mean}");
    // All simple, all distinct.
    for (i, g) in graphs.iter().enumerate() {
        assert!(g.is_simple());
        for other in &graphs[i + 1..] {
            assert_ne!(g, other);
        }
    }
}

#[test]
fn lfr_graph_has_significant_clustering() {
    // Community structure ⇒ triangles far above the degree-sequence null.
    let lfr = nullmodel::generate_lfr(&nullmodel::LfrConfig {
        distribution: graphcore::DegreeDistribution::from_pairs(vec![(5, 500), (10, 100)]).unwrap(),
        mixing: 0.1,
        community_size_min: 15,
        community_size_max: 50,
        community_exponent: 1.5,
        swap_iterations: 3,
        seed: 8,
    })
    .unwrap()
    .graph;
    let report = significance_against_null(
        &lfr,
        |g| Csr::from_edge_list(g).triangle_count() as f64,
        &GeneratorConfig::new(21).with_swap_iterations(8),
        15,
    );
    assert!(report.z_score > 3.0, "{report:?}");
}

#[test]
fn null_model_statistics_centered() {
    // A graph that *is* a null sample should not test significant against
    // its own null ensemble.
    let dist = graphcore::DegreeDistribution::from_pairs(vec![(3, 200), (6, 60)]).unwrap();
    let sample = nullmodel::uniform_reference(&dist, 20, 5).unwrap();
    let report = significance_against_null(
        &sample,
        assortativity,
        &GeneratorConfig::new(31).with_swap_iterations(10),
        20,
    );
    assert!(
        report.z_score.abs() < 3.5,
        "null sample tested significant: {report:?}"
    );
    assert!(report.p_value > 0.01);
}

#[test]
fn significance_report_consistency() {
    let samples: Vec<f64> = (0..50).map(|i| (i % 10) as f64).collect();
    let r = SignificanceReport::from_samples(4.5, &samples);
    assert!((r.null_mean - 4.5).abs() < 1e-12);
    assert_eq!(r.z_score, 0.0);
    assert!(
        r.p_value > 0.9,
        "centered observation should be insignificant"
    );
}

#[test]
fn clustering_of_null_models_is_low() {
    // Degree-sequence null models of sparse skewed graphs have tiny
    // clustering — the reason observed clustering is interesting at all.
    let dist = Profile::Meso.distribution(2);
    let graphs = ensemble_from_distribution(&dist, &GeneratorConfig::new(17), 4);
    for g in graphs {
        let c = global_clustering(&g);
        assert!(c < 0.2, "null clustering unexpectedly high: {c}");
    }
}
