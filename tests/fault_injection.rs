//! Fault-injection harness: every injected failure must either surface as
//! the documented typed error or recover to **byte-identical** output.
//!
//! Fixtures come from `fault::inject` ([`FaultPlan`], non-graphical degree
//! sequences, file garblers). Each scenario runs the real pipeline —
//! undersized concurrent tables, starved grow budgets, too-small mixing
//! budgets, unrealizable degree inputs, garbled input files — and asserts
//! the [`fault::GenError::error_code`] or the recovery invariant.

use fault::inject::{self, Expectation, FaultPlan};
use fault::{FaultEvent, FaultLog, GenError};
use graphcore::io::{read_edge_list, ParseError};
use graphcore::{DegreeDistribution, EdgeList};
use nullmodel::{try_generate_from_edge_list_with_workspace, GeneratorConfig};
use swap::{
    try_swap_edges_with_workspace, try_swap_until_mixed, MixingBudget, RecoveryPolicy, SwapConfig,
    SwapWorkspace,
};

/// A ring of `n` vertices: every vertex has degree 2, every swap is legal.
fn ring(n: u32) -> EdgeList {
    EdgeList::from_pairs((0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
}

/// The 2-edge path can never complete a swap (one pairing recreates the
/// same edges, the other creates a self loop), so mixing never progresses.
fn unswappable() -> EdgeList {
    EdgeList::from_pairs(vec![(0, 1), (1, 2)])
}

fn workspace_for(plan: &FaultPlan) -> SwapWorkspace {
    match plan.table_capacity {
        Some(cap) => SwapWorkspace::with_table_capacity(cap),
        None => SwapWorkspace::new(),
    }
}

fn policy_for(plan: &FaultPlan) -> RecoveryPolicy {
    RecoveryPolicy {
        max_grows: plan.max_grows,
        serial_fallback: plan.serial_fallback,
        ..RecoveryPolicy::default()
    }
}

fn serialize(graph: &EdgeList) -> Vec<u8> {
    let mut buf = Vec::new();
    graphcore::io::write_edge_list(graph, &mut buf).expect("in-memory write");
    buf
}

/// Run one plan against the swap kernel and return the mixed graph's bytes
/// (when it succeeded) or the typed error.
fn run_plan(plan: &FaultPlan, seed: u64) -> Result<(Vec<u8>, FaultLog), GenError> {
    let mut graph = ring(300);
    let mut ws = workspace_for(plan);
    let stats = try_swap_edges_with_workspace(
        &mut graph,
        &SwapConfig::new(4, seed),
        &mut ws,
        &policy_for(plan),
    )?;
    Ok((serialize(&graph), stats.events))
}

#[test]
fn undersized_tables_recover_byte_identically_across_pool_sizes() {
    let seed = 11;
    let (reference, ref_events) =
        run_plan(&FaultPlan::reference("reference"), seed).expect("reference run");
    assert!(ref_events.is_empty(), "reference must not need recovery");

    // 64-key tables for a 300-edge ring: two 2× grows are required.
    let plan = FaultPlan::undersized_tables("tiny_tables", 64);
    assert_eq!(plan.expect, Expectation::RecoversIdentically);
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("build pool");
        let (bytes, events) = pool
            .install(|| run_plan(&plan, seed))
            .unwrap_or_else(|e| panic!("{} must recover on {threads} threads: {e}", plan.name));
        assert_eq!(
            bytes, reference,
            "{}: recovered output must be byte-identical on {threads} threads",
            plan.name
        );
        assert!(
            events
                .iter()
                .any(|e| matches!(e, FaultEvent::TableGrown { .. })),
            "{}: recovery must be logged, got {events:?}",
            plan.name
        );
    }
}

#[test]
fn undersized_tables_recover_through_the_full_pipeline() {
    let cfg = GeneratorConfig::new(23).with_swap_iterations(3);
    let mut reference = ring(200);
    try_generate_from_edge_list_with_workspace(&mut reference, &cfg, &mut SwapWorkspace::new())
        .expect("reference pipeline run");

    let mut faulted = ring(200);
    let (stats, _) = try_generate_from_edge_list_with_workspace(
        &mut faulted,
        &cfg,
        &mut SwapWorkspace::with_table_capacity(32),
    )
    .expect("pipeline must recover from undersized tables");
    assert_eq!(serialize(&faulted), serialize(&reference));
    assert!(!stats.events.is_empty(), "recovery must be logged");
}

#[test]
fn undersized_tables_without_recovery_fail_typed() {
    let plan = FaultPlan::undersized_without_recovery("dead_tables", 16);
    let Expectation::FailsWith(code) = plan.expect else {
        panic!("plan must expect failure");
    };
    let err = run_plan(&plan, 7).expect_err("recovery is disabled");
    assert_eq!(err.error_code(), code, "got: {err}");
    let GenError::TableFull {
        grows_attempted, ..
    } = err
    else {
        panic!("unexpected error: {err}");
    };
    assert_eq!(grows_attempted, 0);

    // The failed run must leave the graph untouched.
    let mut graph = ring(300);
    let pristine = serialize(&graph);
    let _ = try_swap_edges_with_workspace(
        &mut graph,
        &SwapConfig::new(4, 7),
        &mut workspace_for(&plan),
        &policy_for(&plan),
    );
    assert_eq!(serialize(&graph), pristine, "failed run mutated the graph");
}

#[test]
fn starved_mixing_budget_fails_typed_with_accurate_report() {
    let plan = FaultPlan::starved_mixing_budget("starved", 3);
    let sweeps = plan.max_sweeps.expect("plan sets a budget");
    let mut graph = unswappable();
    let err = try_swap_until_mixed(&mut graph, 0.5, &MixingBudget::sweeps(sweeps), 1)
        .expect_err("the 2-edge path can never mix");
    let Expectation::FailsWith(code) = plan.expect else {
        panic!("plan must expect failure");
    };
    assert_eq!(err.error_code(), code, "got: {err}");
    let GenError::MixingBudgetExceeded {
        sweeps_completed,
        max_sweeps,
        ever_swapped_fraction,
        ..
    } = err
    else {
        panic!("unexpected error: {err}");
    };
    assert_eq!(sweeps_completed, sweeps);
    assert_eq!(max_sweeps, sweeps);
    assert_eq!(ever_swapped_fraction, 0.0);
}

/// Satellite watchdog contract: a budget one sweep short of what mixing
/// needs fails with an accurate count; doubling the budget succeeds and is
/// deterministic (byte-identical across repeats and budget sizes).
#[test]
fn doubled_budget_succeeds_deterministically_where_starved_budget_fails() {
    let seed = 5;
    let threshold = 0.99;

    // Self-calibrate: learn how many sweeps this graph actually needs.
    let mut calibrated = ring(120);
    let generous =
        try_swap_until_mixed(&mut calibrated, threshold, &MixingBudget::sweeps(400), seed)
            .expect("a 400-sweep budget is generous");
    let needed = generous.iterations.len();
    assert!(needed >= 2, "fixture must need at least 2 sweeps: {needed}");

    let mut starved_graph = ring(120);
    let err = try_swap_until_mixed(
        &mut starved_graph,
        threshold,
        &MixingBudget::sweeps(needed - 1),
        seed,
    )
    .expect_err("one sweep short must fail");
    let GenError::MixingBudgetExceeded {
        sweeps_completed, ..
    } = err
    else {
        panic!("unexpected error: {err}");
    };
    assert_eq!(sweeps_completed, needed - 1, "sweep count must be accurate");

    // Doubling the starved budget clears the hurdle, and lands on exactly
    // the same graph as the generous run (the budget never alters the
    // trajectory, only where it may be cut off).
    let mut doubled_graph = ring(120);
    let doubled = try_swap_until_mixed(
        &mut doubled_graph,
        threshold,
        &MixingBudget::sweeps(2 * (needed - 1)),
        seed,
    )
    .expect("doubled budget must succeed");
    assert_eq!(doubled.iterations.len(), needed);
    assert_eq!(serialize(&doubled_graph), serialize(&calibrated));
}

#[test]
fn non_graphical_sequences_fail_typed_with_named_reasons() {
    for (name, degrees) in inject::non_graphical_sequences() {
        // Histogram the per-vertex sequence into (degree, count) pairs.
        let mut pairs: Vec<(u32, u64)> = Vec::new();
        let mut sorted = degrees.clone();
        sorted.sort_unstable();
        for d in sorted {
            match pairs.last_mut() {
                Some((deg, c)) if *deg == d => *c += 1,
                _ => pairs.push((d, 1)),
            }
        }
        let dist = DegreeDistribution::from_pairs_relaxed(pairs)
            .unwrap_or_else(|e| panic!("{name}: fixture must construct: {e}"));
        let err = nullmodel::try_uniform_reference(&dist, 2, 1)
            .expect_err(&format!("{name} must be rejected"));
        assert_eq!(err.error_code(), "non_graphical", "{name}: got {err}");
        let GenError::NonGraphical { reason } = &err else {
            panic!("{name}: unexpected error: {err}");
        };
        assert!(!reason.is_empty(), "{name}: reason must name the violation");
    }
}

/// Checkpoint corruption belongs to the same taxonomy: any byte-level
/// garbling produced by the `fault::inject` helpers must surface as the
/// typed `corrupt_checkpoint` error (exit 9), never as a panic or a
/// silently-wrong resume. (`crates/ckpt/tests/format_proptests.rs` sweeps
/// *every* single-bit flip and truncation; this scenario wires the same
/// garblers into the fault-injection harness.)
#[test]
fn garbled_checkpoints_fail_typed_through_the_injection_helpers() {
    let mut graph = ring(40);
    let mut ctl = swap::MixControl::none();
    let report = swap::try_mix_resumable(
        &mut graph,
        swap::StopRule::Threshold(0.999),
        &MixingBudget::sweeps(1),
        9,
        &mut ctl,
        &mut SwapWorkspace::new(),
        &RecoveryPolicy::default(),
    )
    .expect("starved run still returns a report");
    let state = report.checkpoint.expect("budget-exhausted run checkpoints");
    let bytes = ckpt::codec::encode(&ckpt::Snapshot::without_counters(state));

    for (name, garbled) in [
        ("flipped_header_bit", inject::flip_bit(&bytes, 17)),
        ("flipped_payload_bit", inject::flip_bit(&bytes, 8 * 40 + 3)),
        (
            "truncated_half",
            inject::truncate_bytes(&bytes, bytes.len() / 2),
        ),
        ("truncated_empty", inject::truncate_bytes(&bytes, 0)),
    ] {
        let err = ckpt::codec::decode(&garbled, name).expect_err(name);
        assert_eq!(err.error_code(), "corrupt_checkpoint", "{name}: {err}");
        assert_eq!(err.exit_code(), 9, "{name}");
        assert!(
            err.to_string().contains("byte"),
            "{name}: diagnostic must carry a byte offset: {err}"
        );
    }
}

#[test]
fn garbled_and_truncated_files_fail_with_line_diagnostics() {
    let valid = "0 1\n1 2\n2 3\n3 0\n";
    assert!(read_edge_list(valid.as_bytes()).is_ok());

    let parse_error = |err: &std::io::Error| -> ParseError {
        err.get_ref()
            .and_then(|e| e.downcast_ref::<ParseError>())
            .unwrap_or_else(|| panic!("not a ParseError: {err}"))
            .clone()
    };

    // Truncated mid-token: the dangling line is reported verbatim.
    let truncated = inject::truncate(valid, 9);
    let err = read_edge_list(truncated.as_bytes()).expect_err("truncated file");
    let p = parse_error(&err);
    assert_eq!(p.line_number, Some(3));
    assert!(p.reason.contains("found one"), "reason: {}", p.reason);

    // Garbled line: number and text are reported.
    let garbled = inject::garble_line(valid, 2, "2 %%%");
    let err = read_edge_list(garbled.as_bytes()).expect_err("garbled file");
    let p = parse_error(&err);
    assert_eq!(p.line_number, Some(3));
    assert_eq!(p.line, "2 %%%");

    // The same failure maps onto the typed taxonomy as bad_input.
    let gen = GenError::BadInput {
        line: p.line_number,
        text: p.line.clone(),
        reason: p.reason.clone(),
    };
    assert_eq!(gen.error_code(), "bad_input");
    assert_eq!(gen.exit_code(), 4);
}
