//! Section VI integration: LFR-like benchmarks and generalized hierarchies
//! at realistic sizes.

use graphcore::DegreeDistribution;
use nullmodel::{generate_layered, generate_lfr, GeneratorConfig, Layer, LfrConfig};

fn community_distribution() -> DegreeDistribution {
    // A skewed global distribution, the regime where the paper notes plain
    // Chung-Lu methods fail for small communities.
    DegreeDistribution::from_pairs(vec![(3, 1200), (6, 500), (12, 150), (25, 30), (60, 4)]).unwrap()
}

fn lfr_config(mixing: f64, seed: u64) -> LfrConfig {
    LfrConfig {
        distribution: community_distribution(),
        mixing,
        community_size_min: 20,
        community_size_max: 120,
        community_exponent: 1.5,
        swap_iterations: 3,
        seed,
    }
}

#[test]
fn measured_mixing_tracks_target_over_sweep() {
    let mut previous = -1.0;
    for &mu in &[0.1, 0.3, 0.5, 0.7] {
        let out = generate_lfr(&lfr_config(mu, 42)).unwrap();
        assert!(out.graph.is_simple());
        assert!(
            (out.measured_mixing - mu).abs() < 0.12,
            "target {mu}, measured {}",
            out.measured_mixing
        );
        assert!(
            out.measured_mixing > previous,
            "mixing must increase with μ"
        );
        previous = out.measured_mixing;
    }
}

#[test]
fn global_degree_distribution_roughly_preserved() {
    let cfg = lfr_config(0.25, 7);
    let out = generate_lfr(&cfg).unwrap();
    let target_m = cfg.distribution.num_edges() as f64;
    let got_m = out.graph.len() as f64;
    assert!(
        (got_m - target_m).abs() / target_m < 0.15,
        "m {got_m} vs {target_m}"
    );
    // Stub loss from parity fixes must be marginal.
    let loss = out.lost_stubs as f64 / cfg.distribution.stub_sum() as f64;
    assert!(loss < 0.02, "lost {loss}");
}

#[test]
fn communities_have_internal_structure() {
    let out = generate_lfr(&lfr_config(0.2, 3)).unwrap();
    // With μ = 0.2, most edges must be intra-community.
    let intra = out
        .graph
        .edges()
        .iter()
        .filter(|e| out.communities[e.u() as usize] == out.communities[e.v() as usize])
        .count();
    assert!(intra as f64 / out.graph.len() as f64 > 0.65);
}

#[test]
fn overlapping_degree_shares_sum_constraint() {
    // λ shares that do not sum to one are rejected — the paper's only
    // stated restriction on the generalized hierarchy.
    let degrees = vec![4u32; 50];
    let layers = [
        Layer {
            groups: vec![0; 50],
            lambda: 0.5,
        },
        Layer {
            groups: vec![0; 50],
            lambda: 0.3,
        },
    ];
    assert!(generate_layered(&degrees, &layers, &GeneratorConfig::new(1)).is_err());
}

#[test]
fn three_level_hierarchy_at_scale() {
    let n = 2000usize;
    let degrees = vec![10u32; n];
    let fine: Vec<u32> = (0..n).map(|v| (v / 50) as u32).collect();
    let mid: Vec<u32> = (0..n).map(|v| (v / 250) as u32).collect();
    let layers = [
        Layer {
            groups: fine.clone(),
            lambda: 0.6,
        },
        Layer {
            groups: mid.clone(),
            lambda: 0.25,
        },
        Layer {
            groups: vec![0; n],
            lambda: 0.15,
        },
    ];
    let out = generate_layered(&degrees, &layers, &GeneratorConfig::new(13)).unwrap();
    assert!(out.graph.is_simple());
    let m = out.graph.len() as f64;
    let target = n as f64 * 10.0 / 2.0;
    assert!((m - target).abs() / target < 0.15, "m {m} target {target}");

    // Count edges by the finest level containing both endpoints.
    let mut fine_edges = 0usize;
    let mut mid_edges = 0usize;
    let mut global_edges = 0usize;
    for e in out.graph.edges() {
        let (u, v) = (e.u() as usize, e.v() as usize);
        if fine[u] == fine[v] {
            fine_edges += 1;
        } else if mid[u] == mid[v] {
            mid_edges += 1;
        } else {
            global_edges += 1;
        }
    }
    // Shares should roughly follow the λ values.
    let total = out.graph.len() as f64;
    assert!((fine_edges as f64 / total - 0.6).abs() < 0.12);
    assert!(mid_edges > 0 && global_edges > 0);
}

#[test]
fn lfr_stress_small_communities() {
    // Many tiny skewed communities — the regime the paper highlights.
    let cfg = LfrConfig {
        distribution: DegreeDistribution::from_pairs(vec![(2, 800), (5, 200), (15, 20)]).unwrap(),
        mixing: 0.15,
        community_size_min: 8,
        community_size_max: 24,
        community_exponent: 2.0,
        swap_iterations: 2,
        seed: 77,
    };
    let out = generate_lfr(&cfg).unwrap();
    assert!(out.graph.is_simple());
    let num_comms = *out.communities.iter().max().unwrap() as u64 + 1;
    assert!(num_comms >= 1020 / 24, "got {num_comms} communities");
}
