//! Observability integration: the obs counter registry must agree *exactly*
//! with the authoritative [`swap::SwapStats`], stay deterministic across
//! thread-pool sizes, and be populated by every instrumented subsystem of
//! the distribution pipeline. Counting is read-only, so every test also
//! doubles as a check that attaching a registry never changes the output.

use graphcore::DegreeDistribution;
use nullmodel::{try_generate_from_distribution, try_generate_from_edge_list, GeneratorConfig};
use std::sync::Arc;

fn as20_like() -> DegreeDistribution {
    datasets::Profile::As20.distribution(4)
}

fn mix_cfg(seed: u64, sweeps: usize, metrics: Arc<obs::Metrics>) -> GeneratorConfig {
    GeneratorConfig::new(seed)
        .with_swap_iterations(sweeps)
        .with_metrics(metrics)
}

#[test]
fn mix_counters_match_swap_stats_exactly() {
    let mut g = generators::havel_hakimi(&as20_like()).unwrap();
    let m = g.len() as u64;
    let metrics = Arc::new(obs::Metrics::default());
    let (stats, _) =
        try_generate_from_edge_list(&mut g, &mix_cfg(11, 12, metrics.clone())).unwrap();
    let snap = metrics.snapshot();

    assert_eq!(snap.swap_sweeps as usize, stats.iterations.len());
    assert_eq!(snap.swap_accepts, stats.total_successful());
    // Every sweep proposes over ⌈m/2⌉ slots (the odd edge out is a counted
    // singleton rejection), and every proposal is either accepted or
    // rejected for exactly one cause.
    assert_eq!(snap.swap_proposals, snap.swap_sweeps * m.div_ceil(2));
    assert_eq!(
        snap.swap_proposals,
        snap.swap_accepts + snap.swap_rejects_total()
    );
    // The per-sweep odd-edge singleton accounting reconciles against the
    // stats' ⌊m/2⌋ attempted pairs.
    let attempted: u64 = stats.iterations.iter().map(|i| i.attempted_pairs).sum();
    assert_eq!(snap.swap_proposals - attempted, snap.swap_sweeps * (m % 2));
}

#[test]
fn attaching_metrics_does_not_change_the_output() {
    let dist = as20_like();
    let mut plain = generators::havel_hakimi(&dist).unwrap();
    let mut counted = plain.clone();
    let cfg = GeneratorConfig::new(21).with_swap_iterations(8);
    try_generate_from_edge_list(&mut plain, &cfg).unwrap();
    let metrics = Arc::new(obs::Metrics::default());
    try_generate_from_edge_list(&mut counted, &mix_cfg(21, 8, metrics)).unwrap();
    assert_eq!(plain, counted, "instrumentation must be read-only");
}

#[test]
fn distribution_pipeline_populates_every_subsystem() {
    let dist = as20_like();
    let metrics = Arc::new(obs::Metrics::default());
    let cfg = GeneratorConfig::new(5)
        .with_swap_iterations(10)
        .with_refine_rounds(3)
        .with_metrics(metrics.clone());
    let out = try_generate_from_distribution(&dist, &cfg).unwrap();
    let snap = metrics.snapshot();

    // Edge-skip generated exactly the edges the final graph carries (swaps
    // preserve edge count), and skipped the rest of the pair space.
    assert_eq!(snap.edgeskip_edges, out.graph.len() as u64);
    assert!(snap.edgeskip_skips > 0);
    // Sinkhorn ran its configured refinement rounds and left a residual.
    assert!(snap.sinkhorn_rounds >= 3);
    assert!(snap.sinkhorn_residual.is_finite());
    // The concurrent hash tables recorded probe lengths while swapping.
    // Recording is a deterministic 1-in-64 sample by key hash (the
    // histogram is a distribution estimate, not an exactness counter), so
    // the count here is ~1/64 of the probes issued — but never zero on a
    // graph this size, and always bucket-consistent.
    assert!(snap.probe_count > 0);
    assert_eq!(
        snap.probe_count,
        snap.probe_buckets.iter().sum::<u64>(),
        "histogram buckets must sum to the recorded count"
    );
    // Every pipeline phase accumulated wall time.
    assert!(snap.phase_probabilities_ns > 0);
    assert!(snap.phase_edge_generation_ns > 0);
    assert!(snap.phase_permute_ns > 0);
    assert!(snap.phase_sweep_ns > 0);
    // And the swap invariants hold end-to-end here too.
    assert_eq!(snap.swap_accepts, out.swap_stats.total_successful());
    assert_eq!(
        snap.swap_proposals,
        snap.swap_accepts + snap.swap_rejects_total()
    );
}

/// The timing fields legitimately differ run to run; everything else must
/// be identical for identical seeds, whatever the pool size.
fn counted_run(seed: u64, threads: usize) -> obs::MetricsSnapshot {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap();
    pool.install(|| {
        let metrics = Arc::new(obs::Metrics::default());
        let mut g = generators::havel_hakimi(&as20_like()).unwrap();
        try_generate_from_edge_list(&mut g, &mix_cfg(seed, 10, metrics.clone())).unwrap();
        metrics.snapshot()
    })
}

#[test]
fn snapshot_deterministic_across_thread_pool_sizes() {
    let reference = counted_run(33, 1).deterministic_part();
    for threads in [2usize, 8] {
        let snap = counted_run(33, threads).deterministic_part();
        assert_eq!(
            snap, reference,
            "counters diverged on a {threads}-thread pool"
        );
    }
}

#[test]
fn identical_runs_produce_identical_snapshots() {
    let a = counted_run(47, 4).deterministic_part();
    let b = counted_run(47, 4).deterministic_part();
    assert_eq!(a, b);
}

#[test]
fn snapshot_json_round_trips_key_values() {
    let metrics = Arc::new(obs::Metrics::default());
    let mut g = generators::havel_hakimi(&as20_like()).unwrap();
    try_generate_from_edge_list(&mut g, &mix_cfg(3, 5, metrics.clone())).unwrap();
    let snap = metrics.snapshot();
    let json = snap.to_json();
    // Spot-check that the documented keys carry the live counter values.
    assert!(json.contains(&format!("\"proposals\": {}", snap.swap_proposals)));
    assert!(json.contains(&format!("\"accepts\": {}", snap.swap_accepts)));
    assert!(json.contains("\"schema\": \"metrics_snapshot_v1\""));
}
