//! End-to-end pipeline integration: the full Algorithm IV.1 on calibrated
//! Table-I profiles, compared against every baseline generator.

use datasets::Profile;
use graphcore::metrics::DistributionComparison;
use graphcore::DegreeDistribution;
use nullmodel::{generate_from_distribution, GeneratorConfig, ValidationReport};

#[test]
fn meso_profile_full_scale() {
    let dist = Profile::Meso.distribution(1);
    let out = generate_from_distribution(&dist, &GeneratorConfig::new(1));
    let report = ValidationReport::measure(&out.graph, &dist);
    assert!(report.is_simple);
    assert!(
        report.comparison.edge_count_pct.abs() < 10.0,
        "report: {report}"
    );
    assert!(
        report.comparison.max_degree_pct.abs() < 10.0,
        "report: {report}"
    );
}

#[test]
fn as20_profile_full_scale() {
    let dist = Profile::As20.distribution(1);
    let out = generate_from_distribution(&dist, &GeneratorConfig::new(2));
    let report = ValidationReport::measure(&out.graph, &dist);
    assert!(report.is_simple);
    assert!(
        report.comparison.edge_count_pct.abs() < 10.0,
        "report: {report}"
    );
}

#[test]
fn ensemble_mean_edge_count_tight() {
    // Averaged over an ensemble, the edge count error shrinks well below
    // the single-run tolerance (the generator matches in expectation).
    let dist = Profile::Meso.distribution(1);
    let runs = 8;
    let mean: f64 = (0..runs)
        .map(|s| {
            generate_from_distribution(&dist, &GeneratorConfig::new(s))
                .graph
                .len() as f64
        })
        .sum::<f64>()
        / runs as f64;
    let target = dist.num_edges() as f64;
    let rel = (mean - target).abs() / target;
    assert!(rel < 0.05, "ensemble mean {mean} target {target}");
}

#[test]
fn our_method_beats_erased_on_max_degree() {
    // The paper's headline quality claim (Fig. 3): the heuristic
    // probabilities + edge-skipping match d_max and edge counts far better
    // than the erased model on skewed distributions.
    let dist = Profile::As20.distribution(1);
    let runs = 5;
    let mut ours = Vec::new();
    let mut erased = Vec::new();
    for s in 0..runs {
        let g = generate_from_distribution(&dist, &GeneratorConfig::new(s)).graph;
        ours.push(DistributionComparison::measure(&g, &dist));
        let (e, _) = generators::erased_chung_lu(&dist, s);
        erased.push(DistributionComparison::measure(&e, &dist));
    }
    let ours_m = DistributionComparison::mean_abs(&ours);
    let erased_m = DistributionComparison::mean_abs(&erased);
    assert!(
        ours_m.max_degree_pct < erased_m.max_degree_pct,
        "ours {ours_m:?} vs erased {erased_m:?}"
    );
}

#[test]
fn all_generators_on_skewed_profile() {
    // Every generator must at least produce structurally valid output on a
    // genuinely skewed target.
    let dist = Profile::Meso.distribution(1);
    let seed = 3;

    let om = generators::chung_lu_om(&dist, seed);
    assert_eq!(om.len() as u64, dist.num_edges());

    let (er, _) = generators::erased_chung_lu(&dist, seed);
    assert!(er.is_simple());

    let be = generators::bernoulli_edgeskip(&dist, seed);
    assert!(be.is_simple());

    let hh = generators::havel_hakimi(&dist).expect("profile is graphical");
    assert!(hh.is_simple());
    assert_eq!(hh.degree_distribution(), dist);

    let ours = generate_from_distribution(&dist, &GeneratorConfig::new(seed)).graph;
    assert!(ours.is_simple());
}

#[test]
fn refined_probabilities_improve_expectation_on_profile() {
    let dist = Profile::Meso.distribution(1);
    let plain = generate_from_distribution(&dist, &GeneratorConfig::new(4));
    let refined =
        generate_from_distribution(&dist, &GeneratorConfig::new(4).with_refine_rounds(25));
    assert!(refined.probability_residual <= plain.probability_residual + 1e-12);
    assert!(refined.graph.is_simple());
}

#[test]
fn scaled_large_profile_runs() {
    // A scaled-down LiveJournal exercise of the whole pipeline at tens of
    // thousands of edges.
    let dist = Profile::LiveJournal.distribution(1000);
    let out = generate_from_distribution(&dist, &GeneratorConfig::new(5).with_swap_iterations(3));
    assert!(out.graph.is_simple());
    let target = dist.num_edges() as f64;
    let got = out.graph.len() as f64;
    assert!((got - target).abs() / target < 0.1, "m {got} vs {target}");
}

#[test]
fn dense_distribution_handled() {
    // High average degree relative to n stresses the caps in §IV-A.
    let dist = DegreeDistribution::from_pairs(vec![(8, 40), (12, 20), (19, 4)]).unwrap();
    let out = generate_from_distribution(&dist, &GeneratorConfig::new(6));
    assert!(out.graph.is_simple());
    let target = dist.num_edges() as f64;
    let got = out.graph.len() as f64;
    assert!((got - target).abs() / target < 0.25, "m {got} vs {target}");
}
