//! Tier-1 validation of the mixing stop rules against exact ground truth.
//!
//! The `--until-mixed` coverage proxy (fraction of edges ever swapped)
//! measures *movement*, not *mixing*: on small graphs every edge has been
//! touched long before the chain forgets its starting point. These tests
//! make that failure concrete and prove the replacement sound, both on the
//! exactly enumerated realization support of `[2, 2, 2, 1, 1]`:
//!
//! * stopping at the coverage threshold samples a **biased** distribution
//!   over the support — chi-square against uniform must REJECT;
//! * stopping with the ESS-based `Converged` rule waits for the trailing
//!   observable window to decorrelate, and the sampled distribution passes
//!   the same chi-square at the same significance.
//!
//! **False-positive budget.** The converged-rule assertion is the only one
//! that can fail under the null; at `alpha = 1e-7` with fixed seeds the
//! a-priori risk of an unlucky seed choice is below `1e-6`. The rejection
//! assertions fail in the opposite direction (they demand detection of a
//! genuinely biased sampler) and do not consume the budget.

use generators::havel_hakimi_sequence;
use graphcore::DegreeSequence;
use parutil::rng::mix64;
use stattest::{chi_square_uniform, Realizations};
use swap::{MixControl, MixOutcome, MixingBudget, RecoveryPolicy, StopRule, SwapWorkspace};

/// The tested degree sequence (path-plus-pendant shapes, n = 5, m = 4).
const SEQUENCE: [u32; 5] = [2, 2, 2, 1, 1];

/// Independent chain samples per rule.
const TRIALS: u64 = 2_000;

/// Sweep budget per sample; every rule under test must stop well inside it.
const BUDGET_SWEEPS: usize = 400;

/// Significance of each chi-square verdict.
const ALPHA: f64 = 1e-7;

/// Sample the chain `TRIALS` times under `stop`, histogram the stopping
/// states over the exact support, and report the mean sweeps per sample.
fn stopping_histogram(stop: StopRule, base_seed: u64) -> (Vec<u64>, f64) {
    let support = Realizations::enumerate(&SEQUENCE).expect("n <= 8 enumerates");
    let start =
        havel_hakimi_sequence(&DegreeSequence::new(SEQUENCE.to_vec())).expect("graphical sequence");
    let mut counts = vec![0u64; support.support_size()];
    let mut ws = SwapWorkspace::new();
    let mut total_sweeps = 0usize;
    for trial in 0..TRIALS {
        let seed = mix64(base_seed ^ mix64(trial ^ 0xD1B5_4A32_D192_ED03));
        let mut g = start.clone();
        let report = swap::try_mix_resumable(
            &mut g,
            stop,
            &MixingBudget::sweeps(BUDGET_SWEEPS),
            seed,
            &mut MixControl::none(),
            &mut ws,
            &RecoveryPolicy::default(),
        )
        .expect("mixing succeeds");
        assert_eq!(
            report.outcome,
            MixOutcome::Completed,
            "stop rule {stop:?} must trigger within {BUDGET_SWEEPS} sweeps"
        );
        total_sweeps += report.stats.iterations.len();
        let mask = support
            .mask_of(&g)
            .expect("swaps preserve degrees and simplicity");
        let idx = support.index_of(mask).expect("mask is in the support");
        counts[idx] += 1;
    }
    (counts, total_sweeps as f64 / TRIALS as f64)
}

/// The coverage proxy stops after a handful of sweeps — long before the
/// chain forgets the Havel–Hakimi start — and the resulting sample is
/// provably non-uniform. This is the bug the `Converged` rule replaces.
#[test]
fn threshold_rule_stops_early_and_samples_a_biased_distribution() {
    let (counts, mean_sweeps) = stopping_histogram(StopRule::Threshold(0.5), 0xBAD_5EED);
    let outcome = chi_square_uniform(&counts);
    eprintln!(
        "threshold(0.50): mean {mean_sweeps:.2} sweeps/sample, chi2 = {:.1}, p = {:.3e}",
        outcome.statistic, outcome.p_value
    );
    assert!(
        outcome.rejected_at(ALPHA),
        "coverage-threshold stopping must be detectably biased: \
         chi2 = {:.3}, p = {:.3e}, counts = {counts:?}",
        outcome.statistic,
        outcome.p_value
    );
    assert!(
        mean_sweeps < 10.0,
        "the proxy is expected to fire almost immediately, got {mean_sweeps:.1} sweeps"
    );
}

/// Even the CLI's default threshold (0.99) declares "mixed" too early on
/// this fixture: full edge coverage is reached while the chain still
/// remembers its start.
#[test]
fn default_threshold_is_also_biased_on_the_adversarial_fixture() {
    let (counts, mean_sweeps) = stopping_histogram(StopRule::Threshold(0.99), 0xBAD_F00D);
    let outcome = chi_square_uniform(&counts);
    eprintln!(
        "threshold(0.99): mean {mean_sweeps:.2} sweeps/sample, chi2 = {:.1}, p = {:.3e}",
        outcome.statistic, outcome.p_value
    );
    assert!(
        outcome.rejected_at(ALPHA),
        "default-threshold stopping must be detectably biased: \
         chi2 = {:.3}, p = {:.3e}, counts = {counts:?}",
        outcome.statistic,
        outcome.p_value
    );
    assert!(
        mean_sweeps < 20.0,
        "full coverage is still far from mixed, got {mean_sweeps:.1} sweeps"
    );
}

/// The ESS-based rule waits for a full observable window to decorrelate,
/// which on this fixture comfortably exceeds the mixing time: the sampled
/// stopping states are uniform over the exact support.
#[test]
fn converged_rule_waits_and_samples_the_uniform_distribution() {
    let stop = StopRule::Converged {
        min_ess: 24,
        window: 48,
    };
    let (counts, mean_sweeps) = stopping_histogram(stop, 0xC0FFEE);
    let outcome = chi_square_uniform(&counts);
    eprintln!(
        "converged(24/48): mean {mean_sweeps:.2} sweeps/sample, chi2 = {:.1}, p = {:.3e}",
        outcome.statistic, outcome.p_value
    );
    assert!(
        !outcome.rejected_at(ALPHA),
        "converged stopping must pass the uniformity chi-square: \
         chi2 = {:.3}, p = {:.3e}, counts = {counts:?}",
        outcome.statistic,
        outcome.p_value
    );
    assert!(
        mean_sweeps >= 48.0,
        "the rule needs at least one full window, got {mean_sweeps:.1} sweeps"
    );
}
