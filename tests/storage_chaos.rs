//! Storage-fault chaos campaign for the mix→checkpoint→resume pipeline.
//!
//! A fault-free reference run through a counting [`vfs::FaultVfs`]
//! discovers the pipeline's full operation-index space; the campaign then
//! replays the identical pipeline once per (kind, index) pair with exactly
//! that one operation faulted, and asserts the chaos contract:
//!
//! * **byte-identical or typed** — every run either completes with output
//!   byte-identical to the fault-free reference, or fails with a typed
//!   `storage_exhausted` / `storage_io` error. No panics, no other codes.
//! * **atomic-or-absent** — whatever happened, the sample file on disk is
//!   either the full reference bytes or absent; never a prefix.
//! * **resumable** — after a typed failure, a fault-free rerun over the
//!   same directory (resuming from whatever checkpoint survived) lands on
//!   the byte-identical reference output.
//!
//! The serve-side campaign (accept → fault → recovery boot) lives in
//! `crates/serve/tests/chaos.rs`; this harness drives the library layers
//! (`swap` + `ckpt` + `vfs`) directly.

use graphcore::EdgeList;
use std::path::{Path, PathBuf};
use swap::{
    CheckpointPolicy, GenError, MixControl, MixOutcome, MixState, MixingBudget, RecoveryPolicy,
    StopRule, SwapWorkspace,
};
use vfs::{FaultKind, FaultVfs, RetryPolicy, Vfs};

const N: u32 = 48;
const SWEEPS: usize = 5;
const SEED: u64 = 0x00C1_1A05;

fn ring(n: u32) -> EdgeList {
    EdgeList::from_pairs((0..n).map(|i| (i, (i + 1) % n)))
}

fn serialize(graph: &EdgeList) -> Vec<u8> {
    let mut buf = Vec::new();
    graphcore::io::write_edge_list(graph, &mut buf).expect("in-memory write");
    buf
}

fn campaign_root(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("nullgraph_storage_chaos_{tag}"));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create campaign root");
    d
}

/// One full member pipeline through `fs`: fresh mix (or resume from the
/// checkpoint a previous attempt left), cadence checkpoints every sweep,
/// final sample persisted atomically, checkpoint cleaned up. This mirrors
/// serve's `run_member` and the CLI's resumable path.
fn pipeline(fs: &dyn Vfs, dir: &Path, policy: &RetryPolicy) -> Result<Vec<u8>, GenError> {
    fs.create_dir_all(dir)
        .map_err(|e| vfs::storage_error("create_dir_all", dir, &e, 0))?;
    let ckpt_file = dir.join("member.ckpt");
    let sample = dir.join("sample.txt");
    let budget = MixingBudget::sweeps(SWEEPS);
    let recovery = RecoveryPolicy::default();
    let mut ws = SwapWorkspace::new();

    let mut sink = |state: &MixState| -> Result<(), GenError> {
        ckpt::write_atomic_retry(
            fs,
            &ckpt_file,
            &ckpt::Snapshot::without_counters(state.clone()),
            policy,
        )?;
        Ok(())
    };
    let mut ctl = MixControl {
        interrupt: None,
        policy: Some(CheckpointPolicy::sweeps(1)),
        sink: Some(&mut sink),
    };

    let graph = if fs.exists(&ckpt_file) {
        let snap = match ckpt::load_vfs(fs, &ckpt_file) {
            Ok(s) => s,
            Err(ckpt::LoadError::Io(e)) => {
                return Err(vfs::storage_error("read", &ckpt_file, &e, 0))
            }
            Err(ckpt::LoadError::Corrupt(e)) => return Err(e),
        };
        let (graph, report) =
            swap::resume_from(&snap.state, &budget, &mut ctl, &mut ws, &recovery)?;
        assert_eq!(report.outcome, MixOutcome::Completed);
        graph
    } else {
        let mut graph = ring(N);
        let report = swap::try_mix_resumable(
            &mut graph,
            StopRule::FixedSweeps,
            &budget,
            SEED,
            &mut ctl,
            &mut ws,
            &recovery,
        )?;
        assert_eq!(report.outcome, MixOutcome::Completed);
        graph
    };

    let bytes = serialize(&graph);
    vfs::write_atomic_retry(fs, &sample, &bytes, policy)?;
    let _ = fs.remove_file(&ckpt_file);
    Ok(bytes)
}

/// Fault-free reference bytes plus the pipeline's total op count,
/// discovered by running through a scripted FaultVfs with an empty script
/// (it counts every op but injects nothing).
fn reference(root: &Path) -> (Vec<u8>, u64) {
    let counter = FaultVfs::scripted(Default::default());
    let bytes =
        pipeline(&counter, &root.join("ref"), &RetryPolicy::none()).expect("fault-free reference");
    let stats = counter.fault_stats().expect("fault vfs reports stats");
    assert_eq!(stats.injected_total, 0, "empty script must inject nothing");
    (bytes, stats.ops_total)
}

#[test]
fn every_op_index_fault_is_byte_identical_or_typed_and_resumable() {
    let root = campaign_root("sweep");
    let (ref_bytes, ops_total) = reference(&root);
    assert!(
        ops_total >= 10,
        "pipeline too small to be a meaningful campaign: {ops_total} ops"
    );

    for kind in [FaultKind::Enospc, FaultKind::Eio, FaultKind::TornRename] {
        for index in 0..ops_total {
            let tag = format!("{}_{index}", kind.name());
            let dir = root.join(&tag);
            let faulty = FaultVfs::single(index, kind);
            match pipeline(&faulty, &dir, &RetryPolicy::none()) {
                Ok(bytes) => {
                    assert_eq!(bytes, ref_bytes, "{tag}: silent divergence");
                }
                Err(e) => {
                    let code = e.error_code();
                    assert!(
                        code == "storage_exhausted" || code == "storage_io",
                        "{tag}: untyped failure {code}: {e}"
                    );
                    assert!(
                        e.exit_code() == 13 || e.exit_code() == 14,
                        "{tag}: unstable exit code {}",
                        e.exit_code()
                    );
                    // Typed failures must be resumable: a fault-free rerun
                    // over the same directory (picking up any surviving
                    // checkpoint) must land on the reference bytes.
                    let recovered = pipeline(&vfs::RealVfs, &dir, &RetryPolicy::none())
                        .unwrap_or_else(|e| panic!("{tag}: recovery run failed: {e}"));
                    assert_eq!(recovered, ref_bytes, "{tag}: recovery diverged");
                }
            }
            // Atomic-or-absent, fault or not: the sample on disk is either
            // the complete reference bytes or missing — never a prefix.
            let sample = dir.join("sample.txt");
            if sample.exists() {
                assert_eq!(
                    std::fs::read(&sample).expect("read sample"),
                    ref_bytes,
                    "{tag}: torn sample on disk"
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn single_transient_faults_recover_under_the_retry_policy() {
    let root = campaign_root("retry");
    let (ref_bytes, ops_total) = reference(&root);
    let policy = RetryPolicy::fast(0xFA57);

    // Op 0 is the campaign dir's create_dir_all (not covered by the write
    // retry loop); every other op belongs to a retried atomic write or a
    // best-effort cleanup, so a single transient fault must always recover
    // to a byte-identical result.
    let mut retried_runs = 0u64;
    for kind in [
        FaultKind::Eio,
        FaultKind::ShortWrite,
        FaultKind::TornRename,
        FaultKind::FsyncFail,
    ] {
        for index in 1..ops_total {
            let tag = format!("retry_{}_{index}", kind.name());
            let dir = root.join(&tag);
            let faulty = FaultVfs::single(index, kind);
            let bytes = pipeline(&faulty, &dir, &policy)
                .unwrap_or_else(|e| panic!("{tag}: retry should have recovered: {e}"));
            assert_eq!(bytes, ref_bytes, "{tag}: recovered run diverged");
            let stats = faulty.fault_stats().expect("stats");
            assert_eq!(stats.injected_total, 1, "{tag}: single fault fired once");
            // Recovered-but-logged: retried faults leave IoRetry events in
            // the log (tolerated dir-fsync faults and ignored cleanups
            // legitimately may not).
            if faulty
                .log()
                .iter()
                .any(|e| matches!(e, fault::FaultEvent::IoRetry { .. }))
            {
                retried_runs += 1;
            }
        }
    }
    assert!(
        retried_runs > 0,
        "campaign never exercised the retry path at all"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn sampled_fault_storms_never_corrupt_and_always_resume() {
    let root = campaign_root("storm");
    let (ref_bytes, _) = reference(&root);

    for seed in [1u64, 7, 42, 1337] {
        let tag = format!("storm_{seed}");
        let dir = root.join(&tag);
        // A 15% fault rate with the production retry shape (but zero
        // sleeps): many runs survive through retries, the rest must fail
        // typed and recover on a clean rerun.
        let faulty = FaultVfs::sampled(seed, 150);
        match pipeline(&faulty, &dir, &RetryPolicy::fast(seed)) {
            Ok(bytes) => assert_eq!(bytes, ref_bytes, "{tag}: survived run diverged"),
            Err(e) => {
                let code = e.error_code();
                assert!(
                    code == "storage_exhausted" || code == "storage_io",
                    "{tag}: untyped failure {code}: {e}"
                );
                let recovered = pipeline(&vfs::RealVfs, &dir, &RetryPolicy::none())
                    .unwrap_or_else(|e| panic!("{tag}: recovery failed: {e}"));
                assert_eq!(recovered, ref_bytes, "{tag}: recovery diverged");
            }
        }
    }
    let _ = std::fs::remove_dir_all(&root);
}
