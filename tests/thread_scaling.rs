//! Thread-scaling contract for the sharded two-phase sweep: the swap
//! kernel's output is a pure function of (edge list, seed), so pool size,
//! shard count, scatter layout, and recovery history may change *when* work
//! happens but never *what* is produced. Every test here pins the parallel
//! result byte-for-byte against the serial reference while varying exactly
//! one scheduling lever at a time:
//!
//! * rayon pool size (1 / 2 / 8 / 16 threads),
//! * table shard count ([`SwapWorkspace::with_shards`]),
//! * interrupt → checkpoint → resume cuts (PR 5's durable wire format),
//! * grow-and-retry recovery over undersized sharded tables (PR 3).
//!
//! The companion throughput story (same levers, wall-clock instead of
//! bytes) is the bench thread sweep in `crates/bench` — see EXPERIMENTS.md.

use graphcore::{DegreeDistribution, EdgeList};
use std::sync::atomic::{AtomicBool, Ordering};
use swap::{
    CheckpointPolicy, MixControl, MixOutcome, MixState, MixingBudget, RecoveryPolicy, StopRule,
    SwapConfig, SwapWorkspace,
};

fn dist() -> DegreeDistribution {
    DegreeDistribution::from_pairs(vec![(1, 400), (2, 160), (3, 60), (7, 16), (15, 4)]).unwrap()
}

fn seed_graph() -> EdgeList {
    generators::havel_hakimi(&dist()).unwrap()
}

fn pool(threads: usize) -> rayon::ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build pool")
}

fn serialize(graph: &EdgeList) -> Vec<u8> {
    let mut buf = Vec::new();
    graphcore::io::write_edge_list(graph, &mut buf).expect("in-memory write");
    buf
}

/// One parallel swap run on a given pool size with a given workspace.
fn run_on(threads: usize, cfg: &SwapConfig, ws: &mut SwapWorkspace) -> (Vec<u8>, u64) {
    pool(threads).install(|| {
        let mut g = seed_graph();
        let stats = swap::swap_edges_with_workspace(&mut g, cfg, ws);
        (serialize(&g), stats.total_successful())
    })
}

#[test]
fn sweep_is_byte_identical_across_pool_sizes() {
    let cfg = SwapConfig::new(8, 0x5CA1E);
    let mut serial = seed_graph();
    let serial_stats = swap::swap_edges_serial(&mut serial, &cfg);
    let want = (serialize(&serial), serial_stats.total_successful());
    for threads in [1usize, 2, 8, 16] {
        let got = run_on(threads, &cfg, &mut SwapWorkspace::new());
        assert_eq!(
            got, want,
            "{threads}-thread sharded sweep diverged from the serial reference"
        );
    }
}

#[test]
fn sweep_is_byte_identical_across_shard_counts() {
    // The claim reduction is a commutative minimum per key, so the shard
    // count — like the pool size — is a pure performance lever.
    let cfg = SwapConfig::new(8, 0xBEEF);
    let want = run_on(2, &cfg, &mut SwapWorkspace::new());
    for shards in [1usize, 2, 3, 16, 64] {
        let got = run_on(2, &cfg, &mut SwapWorkspace::with_shards(shards));
        assert_eq!(got, want, "{shards}-shard sweep diverged from the default");
    }
}

#[test]
fn shard_count_and_pool_size_compose() {
    // Vary both levers at once: every (threads, shards) cell of the grid
    // must land on the same bytes.
    let cfg = SwapConfig::new(5, 0x0DDBA11);
    let want = run_on(1, &cfg, &mut SwapWorkspace::new());
    for threads in [2usize, 8, 16] {
        for shards in [1usize, 4, 32] {
            let got = run_on(threads, &cfg, &mut SwapWorkspace::with_shards(shards));
            assert_eq!(got, want, "({threads} threads, {shards} shards) diverged");
        }
    }
}

#[test]
fn reused_workspace_survives_shard_count_changes() {
    // set_shards between runs rebuilds the tables lazily; results must not
    // depend on what shard count the workspace used before.
    let cfg = SwapConfig::new(6, 77);
    let want = run_on(2, &cfg, &mut SwapWorkspace::new());
    let mut ws = SwapWorkspace::new();
    for shards in [1usize, 16, 2, 0, 8] {
        ws.set_shards(shards);
        let got = run_on(2, &cfg, &mut ws);
        assert_eq!(got, want, "reused workspace diverged at {shards} shards");
    }
}

/// Interrupt a fixed-sweep mixing run after `cut` sweeps and return the
/// captured checkpoint state.
fn interrupt_after(n_sweeps: usize, seed: u64, cut: u64, ws: &mut SwapWorkspace) -> MixState {
    let stop_flag = AtomicBool::new(false);
    let mut seen = 0u64;
    let mut captured: Option<MixState> = None;
    let mut sink = |state: &MixState| {
        seen += 1;
        if seen >= cut {
            stop_flag.store(true, Ordering::Release);
        }
        captured = Some(state.clone());
        Ok(())
    };
    let mut ctl = MixControl {
        interrupt: Some(&stop_flag),
        policy: Some(CheckpointPolicy::sweeps(1)),
        sink: Some(&mut sink),
    };
    let mut graph = seed_graph();
    let report = swap::try_mix_resumable(
        &mut graph,
        StopRule::FixedSweeps,
        &MixingBudget::sweeps(n_sweeps),
        seed,
        &mut ctl,
        ws,
        &RecoveryPolicy::default(),
    )
    .expect("interrupted run");
    assert_eq!(report.outcome, MixOutcome::Interrupted);
    report.checkpoint.expect("interrupted run must checkpoint")
}

#[test]
fn checkpoint_resume_is_byte_identical_across_pools_and_shards() {
    // PR 5's crash-consistency contract must hold on the sharded two-phase
    // path: interrupt on one (pool, shards) configuration, resume on a
    // *different* one, and still land on the uninterrupted reference.
    let (sweeps, seed, cut) = (10usize, 0xC0FFEE_u64, 3u64);
    let mut ref_graph = seed_graph();
    let ref_report = swap::try_mix_resumable(
        &mut ref_graph,
        StopRule::FixedSweeps,
        &MixingBudget::sweeps(sweeps),
        seed,
        &mut MixControl::none(),
        &mut SwapWorkspace::new(),
        &RecoveryPolicy::default(),
    )
    .expect("reference run");
    assert_eq!(ref_report.outcome, MixOutcome::Completed);
    let ref_bytes = serialize(&ref_graph);

    for (cut_threads, cut_shards, resume_threads, resume_shards) in [
        (1usize, 1usize, 8usize, 16usize),
        (8, 16, 1, 1),
        (2, 4, 16, 2),
    ] {
        let state = pool(cut_threads).install(|| {
            interrupt_after(
                sweeps,
                seed,
                cut,
                &mut SwapWorkspace::with_shards(cut_shards),
            )
        });

        // Round-trip through the durable format, as a post-crash process
        // would read it back.
        let snap = ckpt::Snapshot::without_counters(state);
        let bytes = ckpt::codec::encode(&snap);
        let loaded = ckpt::codec::decode(&bytes, "thread_scaling.ckpt").expect("decode checkpoint");
        assert_eq!(loaded, snap, "wire round trip must be lossless");

        let (resumed_graph, report) = pool(resume_threads).install(|| {
            swap::resume_from(
                &loaded.state,
                &MixingBudget::sweeps(sweeps),
                &mut MixControl::none(),
                &mut SwapWorkspace::with_shards(resume_shards),
                &RecoveryPolicy::default(),
            )
            .expect("resume")
        });
        assert_eq!(report.outcome, MixOutcome::Completed);
        assert_eq!(
            serialize(&resumed_graph),
            ref_bytes,
            "cut on ({cut_threads}t,{cut_shards}s), resumed on \
             ({resume_threads}t,{resume_shards}s): bytes diverged"
        );
        assert_eq!(
            report.stats.iterations, ref_report.stats.iterations,
            "stitched per-sweep stats must equal the uninterrupted run's"
        );
    }
}

#[test]
fn grow_and_retry_on_sharded_tables_is_byte_identical() {
    // PR 3's recovery contract on the sharded path: a workspace pinned far
    // below the run's edge count overflows a shard, the policy doubles the
    // tables and replays, and the recovered run matches a correctly-sized
    // one on every pool size and shard count.
    let cfg = SwapConfig::new(6, 0xFEED);
    let want = run_on(1, &cfg, &mut SwapWorkspace::new());
    for threads in [1usize, 2, 8] {
        for shards in [1usize, 4, 16] {
            let (bytes, swaps, events) = pool(threads).install(|| {
                let mut ws = SwapWorkspace::with_table_capacity(8);
                ws.set_shards(shards);
                let mut g = seed_graph();
                let stats = swap::try_swap_edges_with_workspace(
                    &mut g,
                    &cfg,
                    &mut ws,
                    // Pinned at 8 keys the tables need ~7 doublings to fit
                    // the run, beyond the default grow budget of 4.
                    &RecoveryPolicy {
                        max_grows: 10,
                        ..RecoveryPolicy::default()
                    },
                )
                .expect("grow-and-retry recovers");
                (serialize(&g), stats.total_successful(), stats.events.len())
            });
            assert_eq!(
                (bytes, swaps),
                want.clone(),
                "({threads} threads, {shards} shards) recovery diverged"
            );
            assert!(
                events > 0,
                "undersized tables must actually exercise recovery \
                 ({threads} threads, {shards} shards)"
            );
        }
    }
}

#[test]
fn grow_and_retry_failure_reports_sharded_table_label() {
    // With recovery disabled, the typed error must name the sharded table
    // so operators can tell which structure overflowed.
    let err = swap::try_swap_edges_with_workspace(
        &mut seed_graph(),
        &SwapConfig::new(4, 9),
        &mut SwapWorkspace::with_table_capacity(4),
        &RecoveryPolicy {
            max_grows: 0,
            serial_fallback: false,
            ..RecoveryPolicy::default()
        },
    )
    .expect_err("pinned-tiny tables without recovery must fail");
    let msg = err.to_string();
    assert!(
        msg.contains("Sharded"),
        "error should name the sharded table, got: {msg}"
    );
}
