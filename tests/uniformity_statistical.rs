//! Tier-1 statistical verification of the swap MCMC (and friends) against
//! exact ground truth.
//!
//! For degree sequences on `n ≤ 8` vertices the full set of simple
//! realizations is enumerated exactly (`stattest::Realizations`), so the
//! chain's "uniform stationary distribution" claim is a testable hypothesis
//! rather than a prayer: sample the chain with fixed seeds, histogram the
//! samples over the support, and chi-square against uniform.
//!
//! **False-positive budget.** Every uniformity assertion in this file uses
//! a family-wise significance of `1e-7` and there are four asserted
//! harness runs, so if the chain *is* uniform the probability this file
//! ever fails is below `4e-7 < 1e-6`. (With fixed seeds the outcome is in
//! fact deterministic — the budget bounds the a-priori risk of having
//! picked unlucky seeds.) The biased-control assertions fail in the
//! opposite direction (they demand rejection of a reducible chain whose
//! chi-square is astronomically large) and do not consume the budget.

use stattest::{
    EdgeSkipExpectationHarness, ExpectationConfig, SamplerKind, SwapUniformityHarness,
    UniformityConfig,
};

/// Family-wise alpha per harness run; see the module docs for the budget.
const ALPHA: f64 = 1e-7;

fn cfg(sweeps: usize, trials: u64, base_seed: u64) -> UniformityConfig {
    UniformityConfig {
        sweeps,
        trials,
        replicates: 2,
        alpha: ALPHA,
        base_seed,
    }
}

/// The real parallel chain is uniform over the realizations of
/// `[2,2,2,1,1]` (path-plus-pendant shapes).
#[test]
fn swap_chain_uniform_on_2_2_2_1_1() {
    let h = SwapUniformityHarness::new(&[2, 2, 2, 1, 1]).unwrap();
    let v = h
        .run(SamplerKind::SwapParallel, &cfg(30, 2_000, 11))
        .unwrap();
    assert!(!v.rejected, "uniformity rejected:\n{v}\n{}", v.to_json());
}

/// The real parallel chain is uniform over the 70 realizations of the
/// 6-cycle's degree sequence `[2; 6]` (60 hexagons + 10 triangle pairs).
/// This support needs swaps that change the cycle structure, so it also
/// exercises the chain's irreducibility.
#[test]
fn swap_chain_uniform_on_six_cycle_sequence() {
    let h = SwapUniformityHarness::new(&[2; 6]).unwrap();
    assert_eq!(h.support().support_size(), 70);
    let v = h
        .run(SamplerKind::SwapParallel, &cfg(40, 3_500, 23))
        .unwrap();
    assert!(!v.rejected, "uniformity rejected:\n{v}\n{}", v.to_json());
}

/// The real parallel chain is uniform over the 15 perfect matchings of
/// `K_6` (degree sequence `[1; 6]`).
#[test]
fn swap_chain_uniform_on_perfect_matchings() {
    let h = SwapUniformityHarness::new(&[1; 6]).unwrap();
    assert_eq!(h.support().support_size(), 15);
    let v = h
        .run(SamplerKind::SwapParallel, &cfg(30, 1_500, 37))
        .unwrap();
    assert!(!v.rejected, "uniformity rejected:\n{v}\n{}", v.to_json());
}

/// Power check: the intentionally-biased control sampler (identical swap
/// proposals, but the permutation step is skipped so the pairing is frozen
/// and the chain is reducible) must be REJECTED on every sequence the real
/// chain passes. Without this, a vacuous harness would pass everything.
#[test]
fn biased_control_sampler_is_rejected() {
    for (seq, sweeps, trials, seed) in [
        (vec![2, 2, 2, 1, 1], 30, 2_000u64, 11u64),
        (vec![2; 6], 40, 3_500, 23),
        (vec![1; 6], 30, 1_500, 37),
    ] {
        let h = SwapUniformityHarness::new(&seq).unwrap();
        let v = h
            .run(SamplerKind::BiasedNoPermutation, &cfg(sweeps, trials, seed))
            .unwrap();
        assert!(
            v.rejected,
            "biased control NOT rejected on {seq:?}:\n{v}\n{}",
            v.to_json()
        );
    }
}

/// The deterministic claim protocol makes the parallel chain identical to
/// the serial reference sample-for-sample, so the two histograms must be
/// equal — on any rayon pool size.
#[test]
fn parallel_and_serial_histograms_identical() {
    let h = SwapUniformityHarness::new(&[2; 6]).unwrap();
    let c = cfg(25, 800, 99);
    let a = h.run(SamplerKind::SwapSerial, &c).unwrap();
    let b = h.run(SamplerKind::SwapParallel, &c).unwrap();
    for (ra, rb) in a.replicates.iter().zip(&b.replicates) {
        assert_eq!(ra.counts, rb.counts);
    }
}

/// End-to-end expectation check of the Bernoulli edge-skip generator:
/// every vertex pair's empirical edge frequency matches its class-pair
/// probability (exact binomial test, Bonferroni over all pairs).
#[test]
fn edgeskip_matches_classpair_probabilities() {
    let dist = graphcore::DegreeDistribution::from_pairs(vec![(2, 10), (4, 5)]).unwrap();
    let h = EdgeSkipExpectationHarness::new(dist);
    let v = h.run(&ExpectationConfig {
        trials: 1_200,
        alpha: ALPHA,
        base_seed: 0x5EED_0001,
    });
    assert!(!v.rejected, "expectation rejected:\n{v}\n{}", v.to_json());
}

/// Power check for the expectation harness: testing honest samples against
/// a deliberately wrong probability matrix must reject.
#[test]
fn edgeskip_harness_detects_wrong_matrix() {
    let dist = graphcore::DegreeDistribution::from_pairs(vec![(2, 10), (4, 5)]).unwrap();
    let h = EdgeSkipExpectationHarness::new(dist.clone());
    let mut wrong = genprob::heuristic_probabilities(&dist);
    for a in 0..wrong.num_classes() {
        for b in a..wrong.num_classes() {
            wrong.set(a, b, (wrong.get(a, b) + 0.5).min(0.95));
        }
    }
    let v = h.run_against(
        &ExpectationConfig {
            trials: 1_200,
            alpha: ALPHA,
            base_seed: 0x5EED_0001,
        },
        &wrong,
    );
    assert!(v.rejected, "wrong matrix NOT rejected:\n{v}");
}

/// The `verify` machinery reports sane machine-readable verdicts: JSON is
/// emitted, support sizes are exact, and p-values are finite probabilities.
#[test]
fn verdicts_are_machine_readable() {
    let h = SwapUniformityHarness::new(&[2, 2, 2, 2, 2]).unwrap();
    assert_eq!(h.support().support_size(), 12); // labeled 5-cycles
    let v = h.run(SamplerKind::SwapSerial, &cfg(20, 600, 5)).unwrap();
    assert_eq!(v.support_size, 12);
    for r in &v.replicates {
        assert!(r.outcome.p_value.is_finite());
        assert!((0.0..=1.0).contains(&r.outcome.p_value));
        assert_eq!(r.counts.iter().sum::<u64>(), v.trials);
    }
    let j = v.to_json();
    assert!(j.contains("\"sampler\":\"swap-serial\""));
    assert!(j.contains("\"support_size\":12"));
}
