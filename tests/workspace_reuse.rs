//! Workspace-reuse regression tests: swap output must be byte-identical
//! with a fresh [`swap::SwapWorkspace`] versus one reused across many runs
//! (including runs of different sizes), on thread pools of 1, 2 and 8
//! workers — and the incremental violation counters must agree exactly
//! with a from-scratch `simplicity_report` after every sweep.

use graphcore::{DegreeDistribution, EdgeList};
use swap::{swap_edges_serial_with_workspace, swap_edges_with_workspace};
use swap::{SwapConfig, SwapStats, SwapWorkspace};

fn ring(n: u32) -> EdgeList {
    EdgeList::from_pairs((0..n).map(|i| (i, (i + 1) % n)))
}

fn stats_eq(a: &SwapStats, b: &SwapStats) {
    assert_eq!(a.iterations.len(), b.iterations.len());
    for (x, y) in a.iterations.iter().zip(&b.iterations) {
        assert_eq!(x.attempted_pairs, y.attempted_pairs);
        assert_eq!(x.successful_swaps, y.successful_swaps);
        assert_eq!(x.self_loops, y.self_loops);
        assert_eq!(x.multi_edges, y.multi_edges);
        assert!((x.ever_swapped_fraction - y.ever_swapped_fraction).abs() < 1e-15);
    }
}

#[test]
fn reused_workspace_matches_fresh_serial() {
    let mut reused = SwapWorkspace::new();
    for (n, seed) in [(64u32, 7u64), (500, 8), (100, 9), (2000, 10), (64, 11)] {
        let cfg = SwapConfig::new(6, seed);
        let mut fresh_g = ring(n);
        let fresh_stats =
            swap_edges_serial_with_workspace(&mut fresh_g, &cfg, &mut SwapWorkspace::new());
        let mut reused_g = ring(n);
        let reused_stats = swap_edges_serial_with_workspace(&mut reused_g, &cfg, &mut reused);
        assert_eq!(fresh_g, reused_g, "n={n} seed={seed}");
        stats_eq(&fresh_stats, &reused_stats);
    }
}

#[test]
fn reused_workspace_matches_fresh_across_pool_sizes() {
    // The reference: serial, fresh workspace.
    let cfg = SwapConfig::new(5, 0xABCD_EF01);
    let mut expect = ring(600);
    let expect_stats =
        swap_edges_serial_with_workspace(&mut expect, &cfg, &mut SwapWorkspace::new());
    for threads in [1usize, 2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            // One workspace reused across several runs; the *last* run is
            // compared against the fresh-workspace reference.
            let mut ws = SwapWorkspace::new();
            let mut warmup = ring(900); // grows buffers past the test size
            swap_edges_with_workspace(&mut warmup, &SwapConfig::new(2, 1), &mut ws);
            let mut g = ring(600);
            let stats = swap_edges_with_workspace(&mut g, &cfg, &mut ws);
            assert_eq!(g, expect, "threads={threads}");
            stats_eq(&stats, &expect_stats);
        });
    }
}

#[test]
fn with_capacity_preallocation_changes_nothing() {
    let cfg = SwapConfig::new(4, 99);
    let mut a = ring(300);
    swap_edges_with_workspace(&mut a, &cfg, &mut SwapWorkspace::new());
    let mut b = ring(300);
    swap_edges_with_workspace(&mut b, &cfg, &mut SwapWorkspace::with_capacity(4096));
    assert_eq!(a, b);
}

/// A deliberately messy multigraph: a ring plus duplicated edges (one
/// triplicated) and self loops (one duplicated).
fn multigraph() -> EdgeList {
    let mut edges: Vec<(u32, u32)> = (0..80).map(|i| (i, (i + 1) % 80)).collect();
    edges.push((0, 1)); // duplicate
    edges.push((0, 1)); // triplicate
    edges.push((5, 6)); // duplicate
    edges.push((12, 12)); // self loop
    edges.push((40, 40)); // self loop...
    edges.push((40, 40)); // ...duplicated
    EdgeList::from_pairs(edges)
}

/// The incremental counters must agree with a from-scratch
/// `simplicity_report` after **every** sweep. Per-iteration seeds depend
/// only on `(cfg.seed, iteration)`, so a `k`-iteration run reproduces the
/// state after sweep `k` of a longer run; recomputing the report on that
/// state cross-checks iteration `k`'s incremental counts.
#[test]
fn incremental_violation_counts_are_exact() {
    let seed = 0x5EED_CAFE;
    let total = 12usize;
    let mut cfg = SwapConfig::new(total, seed);
    cfg.track_violations = true;
    let mut tracked = multigraph();
    let report0 = tracked.simplicity_report();
    assert!(report0.self_loops >= 3 && report0.multi_edges >= 4);
    let stats = swap_edges_with_workspace(&mut tracked, &cfg, &mut SwapWorkspace::new());
    assert_eq!(stats.iterations.len(), total);
    let mut ws = SwapWorkspace::new();
    for k in 1..=total {
        let mut g = multigraph();
        let mut sub = SwapConfig::new(k, seed);
        sub.track_violations = true;
        swap_edges_with_workspace(&mut g, &sub, &mut ws);
        let report = g.simplicity_report();
        let it = &stats.iterations[k - 1];
        assert_eq!(it.self_loops, report.self_loops, "sweep {k}");
        assert_eq!(it.multi_edges, report.multi_edges, "sweep {k}");
    }
    // Sanity: the full run simplified the graph and the counters agree.
    let last = stats.iterations.last().unwrap();
    let final_report = tracked.simplicity_report();
    assert_eq!(last.self_loops, final_report.self_loops);
    assert_eq!(last.multi_edges, final_report.multi_edges);
}

#[test]
fn violation_counts_monotone_and_reach_zero() {
    let mut g = multigraph();
    let mut cfg = SwapConfig::new(60, 3);
    cfg.track_violations = true;
    let stats = swap_edges_with_workspace(&mut g, &cfg, &mut SwapWorkspace::new());
    let totals: Vec<u64> = stats
        .iterations
        .iter()
        .map(|it| it.self_loops + it.multi_edges)
        .collect();
    for w in totals.windows(2) {
        assert!(w[1] <= w[0], "violations increased: {totals:?}");
    }
    assert_eq!(*totals.last().unwrap(), 0, "not simplified: {totals:?}");
    assert!(g.is_simple());
}

#[test]
fn connected_swaps_with_reused_workspace_deterministic() {
    use swap::{swap_edges_connected, swap_edges_connected_with_workspace, ConnectedSwapConfig};
    let cfg = ConnectedSwapConfig::new(5, 21);
    let mut a = ring(80);
    swap_edges_connected(&mut a, &cfg).unwrap();
    let mut ws = SwapWorkspace::new();
    let mut warmup = ring(200);
    swap_edges_connected_with_workspace(&mut warmup, &ConnectedSwapConfig::new(2, 4), &mut ws)
        .unwrap();
    let mut b = ring(80);
    swap_edges_connected_with_workspace(&mut b, &cfg, &mut ws).unwrap();
    assert_eq!(a, b);
}

#[test]
fn ensembles_share_a_workspace_and_stay_deterministic() {
    // `ensemble_from_edge_list` reuses one workspace internally; its output
    // must equal per-sample fresh runs.
    let d = DegreeDistribution::from_pairs(vec![(2, 60), (4, 20)]).unwrap();
    let observed = generators::havel_hakimi(&d).unwrap();
    let cfg = nullmodel::GeneratorConfig::new(17).with_swap_iterations(6);
    let ensemble = nullmodel::ensemble_from_edge_list(&observed, &cfg, 4);
    for (k, g) in ensemble.iter().enumerate() {
        let mut fresh = observed.clone();
        let sub = nullmodel::GeneratorConfig {
            seed: parutil::rng::mix64(cfg.seed ^ (k as u64).wrapping_mul(0xA076_1D64_78BD_642F)),
            ..cfg.clone()
        };
        nullmodel::generate_from_edge_list(&mut fresh, &sub);
        assert_eq!(&fresh, g, "sample {k} differs from fresh-workspace run");
    }
}
